"""Abstract syntax for the QUEL-like query language.

Two layers:

* *Scalar expressions* (:class:`Expr`): constants, column references,
  parameters, function applications, comparisons, boolean connectives.
* *Queries* (:class:`Query`): whole-relation and scalar-item references,
  QUEL-style ``RETRIEVE (targets) [FROM ranges] WHERE cond``, and scalar
  aggregate queries ``AVG(expr) WHERE cond``.

Queries may contain :class:`Param` leaves — free parameters supplied at
evaluation time.  PTL uses parameters for free-variable-indexed aggregates
such as ``price(x)`` (Section 6.1.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

# --------------------------------------------------------------------------
# Scalar expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class of scalar expressions."""

    __slots__ = ()

    def params(self) -> frozenset[str]:
        """Names of :class:`Param` leaves appearing in this expression."""
        return frozenset()


@dataclass(frozen=True)
class Const(Expr):
    """A literal value."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Col(Expr):
    """A column reference, possibly qualified: ``S.price`` or ``price``."""

    name: str

    @property
    def relation(self) -> Optional[str]:
        if "." in self.name:
            return self.name.split(".", 1)[0]
        return None

    @property
    def attribute(self) -> str:
        if "." in self.name:
            return self.name.split(".", 1)[1]
        return self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Param(Expr):
    """A free parameter bound at evaluation time (written ``$name``)."""

    name: str

    def params(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class App(Expr):
    """Application of a registered scalar function."""

    func: str
    args: tuple[Expr, ...]

    def params(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.params()
        return out

    def __str__(self) -> str:
        if self.func in ("+", "-", "*", "/", "mod") and len(self.args) == 2:
            return f"({self.args[0]} {self.func} {self.args[1]})"
        return f"{self.func}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class Cmp(Expr):
    """A comparison; evaluates to a boolean."""

    op: str  # one of = != < <= > >=
    left: Expr
    right: Expr

    def params(self) -> frozenset[str]:
        return self.left.params() | self.right.params()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BoolOp(Expr):
    """Conjunction or disjunction of boolean expressions."""

    op: str  # "and" | "or"
    operands: tuple[Expr, ...]

    def params(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.operands:
            out |= a.params()
        return out

    def __str__(self) -> str:
        return "(" + f" {self.op} ".join(map(str, self.operands)) + ")"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def params(self) -> frozenset[str]:
        return self.operand.params()

    def __str__(self) -> str:
        return f"not {self.operand}"


# --------------------------------------------------------------------------
# Queries
# --------------------------------------------------------------------------


class Query:
    """Base class of queries.

    A query evaluates, against a database state and a parameter environment,
    to either a :class:`~repro.datamodel.relation.Relation` or a scalar.
    """

    __slots__ = ()

    def params(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class RelationRef(Query):
    """The full contents of a named relation."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ItemRef(Query):
    """A scalar database item (e.g. ``time``, or an aggregate-rewriting
    item like ``CUM_PRICE``), optionally indexed by parameter expressions
    (``CUM_PRICE[$x]``, Section 6.1.1)."""

    name: str
    index: tuple[Expr, ...] = ()

    def params(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for e in self.index:
            out |= e.params()
        return out

    def __str__(self) -> str:
        if self.index:
            return f"{self.name}[{', '.join(map(str, self.index))}]"
        return self.name


@dataclass(frozen=True)
class RangeVar:
    """A range variable over a relation: ``STOCK S`` (alias optional)."""

    relation: str
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        return self.alias or self.relation

    def __str__(self) -> str:
        if self.alias:
            return f"{self.relation} {self.alias}"
        return self.relation


@dataclass(frozen=True)
class Retrieve(Query):
    """QUEL-style retrieval.

    ``RETRIEVE (t1, t2, ...) FROM ranges WHERE cond`` — the paper's own
    example syntax (Section 4.1) omits FROM; ranges are then inferred from
    the qualified column names.
    """

    targets: tuple[tuple[str, Expr], ...]  # (output name, expression)
    ranges: tuple[RangeVar, ...]
    where: Optional[Expr] = None

    def params(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for _, e in self.targets:
            out |= e.params()
        if self.where is not None:
            out |= self.where.params()
        return out

    def __str__(self) -> str:
        targets = ", ".join(str(e) for _, e in self.targets)
        s = f"RETRIEVE ({targets})"
        if self.ranges:
            s += " FROM " + ", ".join(map(str, self.ranges))
        if self.where is not None:
            s += f" WHERE {self.where}"
        return s


@dataclass(frozen=True)
class AggregateQuery(Query):
    """An aggregate over the rows selected by a retrieval:
    ``AVG(S.price) FROM STOCK S WHERE S.cat = 'tech'`` (scalar), or with
    ``GROUP BY`` a relation of (group columns..., aggregate value):
    ``SUM(S.price) FROM STOCK S GROUP BY S.cat``."""

    func: str
    expr: Expr
    ranges: tuple[RangeVar, ...]
    where: Optional[Expr] = None
    group_by: tuple["Col", ...] = ()

    def params(self) -> frozenset[str]:
        out = self.expr.params()
        if self.where is not None:
            out |= self.where.params()
        return out

    def __str__(self) -> str:
        s = f"{self.func.upper()}({self.expr})"
        if self.ranges:
            s += " FROM " + ", ".join(map(str, self.ranges))
        if self.where is not None:
            s += f" WHERE {self.where}"
        if self.group_by:
            s += " GROUP BY " + ", ".join(map(str, self.group_by))
        return s


@dataclass(frozen=True)
class ParamQuery(Query):
    """A query whose value is a free parameter itself (``$x`` used as a
    query, e.g. inside ``sum($x, phi, psi)``)."""

    name: str

    def params(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class ConstQuery(Query):
    """A constant query (e.g. the literal ``1`` in ``sum(1, phi, psi)``,
    which the paper uses to count sampling points)."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ExprQuery(Query):
    """A scalar query computed from other queries by a scalar function,
    e.g. ``price(IBM) * 2`` or ``CUM_PRICE / TOTAL_UPDATES``."""

    func: str
    args: tuple[Query, ...]

    def params(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for q in self.args:
            out |= q.params()
        return out

    def __str__(self) -> str:
        if self.func in ("+", "-", "*", "/", "mod") and len(self.args) == 2:
            return f"({self.args[0]} {self.func} {self.args[1]})"
        return f"{self.func}({', '.join(map(str, self.args))})"


QueryLike = Union[Query, str]
