"""Dependency analysis for queries: which database items does a query read?

The delta-aware evaluation machinery (:mod:`repro.query.plan`) needs to
know, for a ground query, the set of database items (relations and scalar
items) its value can depend on.  A query whose analysis is *stable* is a
pure function of those items' stored values (plus the parameter
environment): re-evaluating it against a state whose referenced item
objects are unchanged must return an equal value.

Scalar expressions (:class:`repro.query.ast.Expr`) never read the
database — columns resolve against range-variable bindings and parameters
— so only the query layer contributes dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.clock import TIME_ITEM
from repro.query import ast


@dataclass(frozen=True)
class QueryDeps:
    """The database items a query reads.

    ``items``
        Names of relations and scalar items the query's value may depend
        on (``time`` excluded — see ``uses_time``).
    ``uses_time``
        The query reads the ``time`` item, whose value comes from the
        system-state timestamp rather than the database state, so it
        changes at every state even when no item does.
    ``stable``
        The analysis covered every node; ``False`` means an unknown query
        node was seen and the dependency set must be treated as "anything".
    """

    items: frozenset[str]
    uses_time: bool
    stable: bool


def query_deps(query: ast.Query) -> QueryDeps:
    """Dependency set of ``query`` (see :class:`QueryDeps`)."""
    items: set[str] = set()
    state = {"time": False, "stable": True}

    def visit(q: ast.Query) -> None:
        if isinstance(q, ast.RelationRef):
            items.add(q.name)
        elif isinstance(q, ast.ItemRef):
            if q.name == TIME_ITEM:
                state["time"] = True
            else:
                items.add(q.name)
        elif isinstance(q, (ast.ConstQuery, ast.ParamQuery)):
            pass
        elif isinstance(q, ast.ExprQuery):
            for arg in q.args:
                visit(arg)
        elif isinstance(q, ast.Retrieve):
            for rv in q.ranges:
                items.add(rv.relation)
        elif isinstance(q, ast.AggregateQuery):
            for rv in q.ranges:
                items.add(rv.relation)
        else:
            state["stable"] = False

    visit(query)
    return QueryDeps(frozenset(items), state["time"], state["stable"])
