"""Parameter substitution over query and expression ASTs.

Named query symbols (the paper's "function symbols ... used to denote
queries") are registered as parameterized query definitions and expanded at
formula-registration time; expansion is substitution of :class:`Param`
leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import QueryError
from repro.query import ast


def substitute_expr(expr: ast.Expr, mapping: Mapping[str, ast.Expr]) -> ast.Expr:
    """Replace ``Param(p)`` with ``mapping[p]`` throughout ``expr``."""
    if isinstance(expr, ast.Param):
        return mapping.get(expr.name, expr)
    if isinstance(expr, (ast.Const, ast.Col)):
        return expr
    if isinstance(expr, ast.App):
        return ast.App(
            expr.func, tuple(substitute_expr(a, mapping) for a in expr.args)
        )
    if isinstance(expr, ast.Cmp):
        return ast.Cmp(
            expr.op,
            substitute_expr(expr.left, mapping),
            substitute_expr(expr.right, mapping),
        )
    if isinstance(expr, ast.BoolOp):
        return ast.BoolOp(
            expr.op, tuple(substitute_expr(a, mapping) for a in expr.operands)
        )
    if isinstance(expr, ast.Not):
        return ast.Not(substitute_expr(expr.operand, mapping))
    raise QueryError(f"cannot substitute in {expr!r}")


def substitute_query(query: ast.Query, mapping: Mapping[str, ast.Expr]) -> ast.Query:
    """Replace ``Param(p)`` with ``mapping[p]`` throughout ``query``."""
    if isinstance(query, (ast.RelationRef, ast.ConstQuery)):
        return query
    if isinstance(query, ast.ParamQuery):
        replacement = mapping.get(query.name)
        if replacement is None:
            return query
        if isinstance(replacement, ast.Const):
            return ast.ConstQuery(replacement.value)
        if isinstance(replacement, ast.Param):
            return ast.ParamQuery(replacement.name)
        raise QueryError(
            f"cannot substitute {replacement!r} for query parameter "
            f"${query.name}"
        )
    if isinstance(query, ast.ItemRef):
        return ast.ItemRef(
            query.name, tuple(substitute_expr(e, mapping) for e in query.index)
        )
    if isinstance(query, ast.Retrieve):
        return ast.Retrieve(
            tuple((n, substitute_expr(e, mapping)) for n, e in query.targets),
            query.ranges,
            None if query.where is None else substitute_expr(query.where, mapping),
        )
    if isinstance(query, ast.AggregateQuery):
        return ast.AggregateQuery(
            query.func,
            substitute_expr(query.expr, mapping),
            query.ranges,
            None if query.where is None else substitute_expr(query.where, mapping),
        )
    if isinstance(query, ast.ExprQuery):
        return ast.ExprQuery(
            query.func, tuple(substitute_query(q, mapping) for q in query.args)
        )
    raise QueryError(f"cannot substitute in {query!r}")


@dataclass(frozen=True)
class QueryDef:
    """A parameterized named query: ``price(name) := RETRIEVE ... $name ...``.

    ``params`` are the formal parameter names, appearing as ``$param`` in
    ``body``.
    """

    name: str
    params: tuple[str, ...]
    body: ast.Query

    def instantiate(self, args: tuple[ast.Expr, ...]) -> ast.Query:
        """The body with formals replaced by the given argument expressions.

        Arguments may be constants (``price(IBM)`` — unquoted identifiers
        are treated as string constants, matching the paper's notation) or
        parameters standing for free PTL variables (``price($x)``).
        """
        if len(args) != len(self.params):
            raise QueryError(
                f"query {self.name!r} takes {len(self.params)} argument(s), "
                f"got {len(args)}"
            )
        return substitute_query(self.body, dict(zip(self.params, args)))


class QueryRegistry:
    """Mapping of query symbols to :class:`QueryDef`.

    The registry is the bridge between the paper's *function symbols
    denoting queries* and concrete query ASTs; PTL formulas reference
    queries only through registered symbols or inline ``{ ... }`` query
    text.
    """

    def __init__(self) -> None:
        self._defs: dict[str, QueryDef] = {}

    def define(self, name: str, params: tuple[str, ...], body: ast.Query) -> QueryDef:
        qdef = QueryDef(name, tuple(params), body)
        self._defs[name] = qdef
        return qdef

    def define_text(self, name: str, params: tuple[str, ...], text: str) -> QueryDef:
        from repro.query.parser import parse_query

        return self.define(name, params, parse_query(text))

    def get(self, name: str) -> QueryDef:
        try:
            return self._defs[name]
        except KeyError:
            raise QueryError(f"unknown query symbol {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._defs

    def names(self) -> list[str]:
        return sorted(self._defs)
