"""The valid-time model: retroactive updates, committed histories,
tentative/definite triggers, online/offline constraint satisfaction."""

from repro.validtime.constraints import (
    ConstraintEnforcer,
    check_theorem2,
    offline_satisfied,
    online_satisfied,
    online_satisfied_on,
)
from repro.validtime.manager import ValidTimeRuleManager
from repro.validtime.model import ValidTimeDatabase, VTTransaction, VTUpdate
from repro.validtime.triggers import DefiniteTrigger, TentativeTrigger, VTFiring

__all__ = [
    "ValidTimeDatabase",
    "VTTransaction",
    "VTUpdate",
    "TentativeTrigger",
    "DefiniteTrigger",
    "VTFiring",
    "online_satisfied",
    "offline_satisfied",
    "online_satisfied_on",
    "check_theorem2",
    "ConstraintEnforcer",
    "ValidTimeRuleManager",
]
