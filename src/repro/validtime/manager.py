"""The temporal component for valid-time databases (Section 9.2).

The transaction-time :class:`~repro.rules.manager.RuleManager` steps each
evaluator exactly once per appended state; in the valid-time model a
commit may *retroactively* change the past, so the component must re-run
the evaluation from the oldest touched state (tentative rules) or defer to
the definite horizon (definite rules).  This manager packages both flavors
with actions and firing logs, mirroring the transaction-time manager's
surface:

    vtm = ValidTimeRuleManager(vtdb)
    vtm.add_tentative_trigger("spike", "PRICE >= 100", action)
    vtm.add_definite_trigger("confirmed_spike", "PRICE >= 100", action)
    ...
    vtm.poll()     # after advancing the clock
"""

from __future__ import annotations

from typing import Union

from repro.errors import DuplicateRuleError, UnknownRuleError
from repro.ptl import ast
from repro.ptl.parser import parse_formula
from repro.rules.actions import ActionContext, as_action
from repro.validtime.constraints import ConstraintEnforcer
from repro.validtime.model import ValidTimeDatabase
from repro.validtime.triggers import DefiniteTrigger, TentativeTrigger

ConditionLike = Union[str, ast.Formula]


class _VTRule:
    __slots__ = ("name", "processor", "action", "executed_count")

    def __init__(self, name, processor, action):
        self.name = name
        self.processor = processor
        self.action = action
        self.executed_count = 0


class ValidTimeRuleManager:
    """Triggers and constraints over one valid-time database."""

    def __init__(self, vtdb: ValidTimeDatabase):
        self.vtdb = vtdb
        self._rules: dict[str, _VTRule] = {}
        self._enforcers: dict[str, ConstraintEnforcer] = {}
        self._listener = lambda *a: self._dispatch()
        vtdb.commit_listeners.append(self._listener)

    def _ensure_dispatch_last(self) -> None:
        """Trigger processors subscribe as they are added; the dispatcher
        must run after all of them have seen the commit."""
        self.vtdb.commit_listeners.remove(self._listener)
        self.vtdb.commit_listeners.append(self._listener)

    # -- registration -----------------------------------------------------------

    def _parse(self, condition: ConditionLike) -> ast.Formula:
        if isinstance(condition, ast.Formula):
            return condition
        items = {
            name
            for name in self.vtdb.db.state.item_names()
            if not self.vtdb.db.state.has_relation(name)
        }
        return parse_formula(condition, self.vtdb.db.queries, items)

    def _check_name(self, name: str) -> None:
        if name in self._rules or name in self._enforcers:
            raise DuplicateRuleError(f"rule {name!r} already registered")

    def add_tentative_trigger(
        self, name: str, condition: ConditionLike, action
    ) -> TentativeTrigger:
        """Fires on tentative values; a retroactive change may fire it for
        a past state (at most once per (state, binding))."""
        self._check_name(name)
        processor = TentativeTrigger(self.vtdb, self._parse(condition))
        self._rules[name] = _VTRule(name, processor, as_action(action))
        self._ensure_dispatch_last()
        return processor

    def add_definite_trigger(
        self, name: str, condition: ConditionLike, action
    ) -> DefiniteTrigger:
        """Fires only once states are older than DELTA (delayed, final)."""
        self._check_name(name)
        processor = DefiniteTrigger(self.vtdb, self._parse(condition))
        self._rules[name] = _VTRule(name, processor, as_action(action))
        self._ensure_dispatch_last()
        return processor

    def add_integrity_constraint(
        self, name: str, constraint: ConditionLike
    ) -> ConstraintEnforcer:
        """Commit-time enforcement per Section 9.3 (checks every commit
        point the retroactive updates cross)."""
        self._check_name(name)
        enforcer = ConstraintEnforcer(self.vtdb, self._parse(constraint), name)
        self._enforcers[name] = enforcer
        return enforcer

    def remove_rule(self, name: str) -> None:
        if name in self._rules:
            del self._rules[name]
            return
        if name in self._enforcers:
            enforcer = self._enforcers.pop(name)
            self.vtdb.commit_validators.remove(enforcer._validate)
            return
        raise UnknownRuleError(f"no rule named {name!r}")

    # -- dispatch -----------------------------------------------------------------

    def poll(self) -> None:
        """Run definite triggers against the current definite horizon
        (call after advancing the clock) and dispatch new firings."""
        for rule in self._rules.values():
            if isinstance(rule.processor, DefiniteTrigger):
                rule.processor.poll()
        self._dispatch()

    def _dispatch(self) -> None:
        for rule in self._rules.values():
            firings = rule.processor.firings
            while rule.executed_count < len(firings):
                firing = firings[rule.executed_count]
                rule.executed_count += 1
                rule.action.execute(
                    ActionContext(
                        self.vtdb,
                        firing.binding_dict,
                        _FiringState(firing.timestamp),
                        rule.name,
                    )
                )

    # -- introspection -------------------------------------------------------------

    def firings_of(self, name: str):
        if name not in self._rules:
            raise UnknownRuleError(f"no rule named {name!r}")
        return list(self._rules[name].processor.firings)


class _FiringState:
    """Minimal state handed to valid-time actions: the firing's valid
    timestamp (the full state can be rematerialized from the database)."""

    __slots__ = ("timestamp",)

    def __init__(self, timestamp: int):
        self.timestamp = timestamp
