"""The valid-time system model (Section 9.1).

"Every update presented to the database management system is associated
with a valid time, and this valid time may precede the current time ...
the database management system makes the change retroactively."  The model
differs from transaction time in two ways: update events are placed at
their *valid* times (inserting new system states retroactively if needed),
and database states change at update times, not commit times.

:class:`ValidTimeDatabase` stores the raw material — updates with valid
times, transaction resolutions, user events — and *materializes* the
histories of Section 9 on demand:

* :meth:`system_history` — every update of every resolved-or-pending
  transaction (the fully tentative view);
* :meth:`committed_history` — the committed history at time t: states with
  timestamps <= t, with the effects (and events) of updates uncommitted in
  that prefix eliminated;
* :meth:`collapsed_committed_history` — the committed history with every
  transaction's changes applied at its commit time instead of the update
  times: "a system history in the transaction-time model" (Theorem 2's
  bridge).

The *maximum delay* DELTA bounds retroactivity: "an update cannot make a
retroactive change which goes back more than DELTA time units" — enforced
at commit, and the foundation of *definite* triggers (Section 9.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.errors import (
    ClockError,
    RetroactiveLimitError,
    TransactionAborted,
    TransactionStateError,
)
from repro.events import model as ev
from repro.events.clock import Clock
from repro.history.history import SystemHistory
from repro.history.state import SystemState
from repro.storage.database import Database
from repro.storage.snapshot import DatabaseState


@dataclass(frozen=True)
class VTUpdate:
    """One update: which item, how it changes, when it is valid, whose."""

    item: str
    apply: Callable[[Any], Any]
    valid_time: int
    txn_id: int
    seq: int  # global order for deterministic same-instant application
    event: ev.Event = None

    def __repr__(self) -> str:
        return f"VTUpdate({self.item}, vt={self.valid_time}, txn={self.txn_id})"


class VTTransaction:
    """A valid-time transaction: buffered updates, each with a valid time
    (defaulting to the current clock time)."""

    def __init__(self, txn_id: int, vtdb: "ValidTimeDatabase"):
        self.id = txn_id
        self._vtdb = vtdb
        self.active = True
        self.updates: list[VTUpdate] = []
        self.events: list[tuple[ev.Event, int]] = []

    def _require_active(self):
        if not self.active:
            raise TransactionStateError(f"transaction {self.id} is finished")

    def _push(self, item: str, fn, valid_time: Optional[int], event: ev.Event):
        self._require_active()
        vt = self._vtdb.now if valid_time is None else valid_time
        self.updates.append(
            VTUpdate(item, fn, vt, self.id, self._vtdb._next_seq(), event)
        )

    def set_item(self, name: str, value: Any, valid_time: Optional[int] = None):
        self._push(name, lambda _old: value, valid_time, ev.update_item(name))

    def insert(self, relation: str, values, valid_time: Optional[int] = None):
        schema = self._vtdb.db.schema(relation)
        coerced = schema.check_row_values(tuple(values))
        self._push(
            relation,
            lambda rel: rel.insert(coerced),
            valid_time,
            ev.insert_tuple(relation, coerced),
        )

    def delete(self, relation: str, predicate, valid_time: Optional[int] = None):
        self._vtdb.db.schema(relation)
        self._push(
            relation,
            lambda rel: rel.delete(predicate),
            valid_time,
            ev.Event(ev.DELETE_TUPLE, (relation,)),
        )

    def update(
        self, relation: str, predicate, changes, valid_time: Optional[int] = None
    ):
        self._vtdb.db.schema(relation)
        self._push(
            relation,
            lambda rel: rel.update(predicate, changes),
            valid_time,
            ev.update_item(relation),
        )

    def commit(self, at_time: Optional[int] = None) -> int:
        self._require_active()
        return self._vtdb._commit(self, at_time)

    def abort(self, at_time: Optional[int] = None) -> None:
        self._require_active()
        self._vtdb._abort(self, at_time)


class ValidTimeDatabase:
    """Valid-time active database: retroactive updates, materialized
    committed histories, commit-time integrity enforcement hooks."""

    def __init__(self, start_time: int = 0, max_delay: Optional[int] = None):
        self.db = Database()
        self.clock = Clock(start_time)
        #: The paper's DELTA; None = unbounded retroactivity.
        self.max_delay = max_delay
        self._seq = itertools.count()
        self._next_txn = itertools.count(1)
        self._updates: list[VTUpdate] = []
        self._commits: dict[int, int] = {}  # txn -> commit time
        self._aborts: dict[int, int] = {}
        self._user_events: list[tuple[ev.Event, int]] = []
        self._pending: dict[int, VTTransaction] = {}
        #: Called after each commit with (txn_id, commit_time,
        #: oldest_valid_time) — the trigger processors' re-evaluation hook.
        self.commit_listeners: list[Callable[[int, int, int], None]] = []
        #: Commit validators: f(candidate_committed_history, txn,
        #: commit_time) -> list of violation strings.
        self.commit_validators: list = []

    # -- catalog -----------------------------------------------------------

    def create_relation(self, name, schema, rows=()):
        return self.db.create_relation(name, schema, rows)

    def declare_item(self, name, initial):
        return self.db.declare_item(name, initial)

    def define_query(self, name, params, text):
        return self.db.define_query(name, params, text)

    # -- time ------------------------------------------------------------------

    @property
    def now(self) -> int:
        return self.clock.now

    def advance_to(self, timestamp: int) -> int:
        return self.clock.advance_to(timestamp)

    def _next_seq(self) -> int:
        return next(self._seq)

    # -- transactions --------------------------------------------------------------

    def begin(self) -> VTTransaction:
        txn = VTTransaction(next(self._next_txn), self)
        self._pending[txn.id] = txn
        return txn

    def post_event(self, event: ev.Event, at_time: Optional[int] = None) -> None:
        """A user event, occurring at ``at_time`` (default: now)."""
        ts = self.now if at_time is None else at_time
        if at_time is not None and at_time > self.clock.now:
            self.clock.advance_to(at_time)
        self._user_events.append((event, ts))

    def _commit(self, txn: VTTransaction, at_time: Optional[int]) -> int:
        commit_time = self._resolve_commit_time(at_time)
        if self.max_delay is not None:
            for u in txn.updates:
                if u.valid_time < commit_time - self.max_delay:
                    txn.active = False
                    self._aborts[txn.id] = commit_time
                    del self._pending[txn.id]
                    raise RetroactiveLimitError(
                        f"update of {u.item!r} has valid time {u.valid_time}, "
                        f"more than DELTA={self.max_delay} before commit time "
                        f"{commit_time}"
                    )
        # Trial: validators see the history as it would look committed.
        if self.commit_validators:
            trial = self._materialize(
                up_to=None,
                committed_cutoff=commit_time,
                extra_commit=(txn, commit_time),
            )
            violations = []
            for validator in self.commit_validators:
                violations.extend(validator(trial, txn, commit_time))
            if violations:
                txn.active = False
                self._aborts[txn.id] = commit_time
                del self._pending[txn.id]
                raise TransactionAborted(txn.id, "; ".join(violations))

        txn.active = False
        self._updates.extend(txn.updates)
        self._commits[txn.id] = commit_time
        del self._pending[txn.id]
        oldest = min(
            (u.valid_time for u in txn.updates), default=commit_time
        )
        for listener in list(self.commit_listeners):
            listener(txn.id, commit_time, oldest)
        return commit_time

    def _abort(self, txn: VTTransaction, at_time: Optional[int]) -> None:
        txn.active = False
        self._aborts[txn.id] = self._resolve_commit_time(at_time)
        del self._pending[txn.id]

    def _resolve_commit_time(self, at_time: Optional[int]) -> int:
        taken = set(self._commits.values()) | set(self._aborts.values())
        if at_time is not None:
            if at_time < self.clock.now:
                raise ClockError(
                    f"commit time {at_time} is before the clock ({self.clock.now})"
                )
            while at_time in taken:
                # "no two transactions commit simultaneously"
                at_time += 1
            if at_time > self.clock.now:
                self.clock.advance_to(at_time)
            return at_time
        t = self.clock.now
        while t in taken:
            t += 1
        if t > self.clock.now:
            self.clock.advance_to(t)
        return t

    # -- history materialization ---------------------------------------------------

    def system_history(self) -> SystemHistory:
        """The fully tentative history: all updates of committed
        transactions plus updates of still-pending ones."""
        pending_updates = [
            u for txn in self._pending.values() for u in txn.updates
        ]
        return self._materialize(
            up_to=None,
            committed_cutoff=None,
            include_updates=self._updates + pending_updates,
        )

    def committed_history(
        self, t: Optional[int] = None, committed_by: Optional[int] = None
    ) -> SystemHistory:
        """The committed history at time ``t`` (default: infinity).

        ``committed_by`` overrides which transactions count as committed
        (default: those committed by ``t``).  The definite-trigger
        machinery passes ``committed_by=now`` with ``t=now - DELTA``: all
        *currently known* commits contribute, but only to states old
        enough to be final.
        """
        cutoff = t if committed_by is None else committed_by
        return self._materialize(up_to=t, committed_cutoff=cutoff)

    def collapsed_committed_history(
        self, t: Optional[int] = None
    ) -> SystemHistory:
        """The committed history with database changes applied at commit
        time — a transaction-time history (Section 9.3, Theorem 2)."""
        return self._materialize(up_to=t, committed_cutoff=t, collapse=True)

    def _materialize(
        self,
        up_to: Optional[int],
        committed_cutoff: Optional[int],
        include_updates: Optional[Sequence[VTUpdate]] = None,
        collapse: bool = False,
        extra_commit: Optional[tuple] = None,
    ) -> SystemHistory:
        """Rebuild a history from the raw material.

        ``committed_cutoff``: only updates of transactions committed at or
        before this time are included (None with ``include_updates`` given
        = tentative view).  ``up_to``: drop states after this timestamp.
        ``collapse``: apply changes at commit times (transaction time).
        ``extra_commit``: (txn, commit_time) treated as committed — the
        trial view used by commit validators.
        """
        commits = dict(self._commits)
        updates = list(self._updates) if include_updates is None else list(
            include_updates
        )
        if extra_commit is not None:
            txn, commit_time = extra_commit
            commits[txn.id] = commit_time
            updates.extend(txn.updates)

        if include_updates is None:
            def committed(u: VTUpdate) -> bool:
                ct = commits.get(u.txn_id)
                if ct is None:
                    return False
                if committed_cutoff is not None and ct > committed_cutoff:
                    return False
                return True

            updates = [u for u in updates if committed(u)]

        # Build the event/change timeline.
        timeline: dict[int, dict] = {}

        def slot(ts: int) -> dict:
            return timeline.setdefault(ts, {"events": [], "updates": []})

        for u in updates:
            effect_time = commits[u.txn_id] if collapse else u.valid_time
            entry = slot(effect_time)
            entry["updates"].append(u)
            if u.event is not None:
                slot(u.valid_time)["events"].append(u.event)
        for txn_id, ct in commits.items():
            if committed_cutoff is not None and ct > committed_cutoff:
                continue
            slot(ct)["events"].append(ev.transaction_commit(txn_id))
        for txn_id, at in self._aborts.items():
            if committed_cutoff is not None and at > committed_cutoff:
                continue
            slot(at)["events"].append(ev.transaction_abort(txn_id))
        for event, ts in self._user_events:
            if committed_cutoff is not None and ts > committed_cutoff:
                continue
            slot(ts)["events"].append(event)

        history = SystemHistory(validate_transaction_time=False)
        db = self.db.state
        for ts in sorted(timeline):
            if up_to is not None and ts > up_to:
                break
            entry = timeline[ts]
            changes: dict[str, Any] = {}
            for u in sorted(entry["updates"], key=lambda u: u.seq):
                current = changes.get(u.item, db.raw_item(u.item))
                changes[u.item] = u.apply(current)
            if changes:
                db = db.with_updates(changes)
            history.append(SystemState(db, entry["events"], ts))
        return history

    # -- resolution queries -------------------------------------------------------

    def is_complete(self) -> bool:
        """A *complete* history: every started transaction committed or
        aborted (Section 9.3)."""
        return not self._pending

    def commit_time_of(self, txn_id: int) -> Optional[int]:
        return self._commits.get(txn_id)

    def definite_horizon(self) -> Optional[int]:
        """States at or before this timestamp are *definite*: no future
        update can retroactively change them.

        The paper says a value is definite once it is DELTA old; at the
        exact boundary a commit happening at this very instant may still
        reach ``now - DELTA``, so the horizon is ``now - DELTA - 1``
        (commits at later instants reach strictly past it).
        """
        if self.max_delay is None:
            return None
        return self.now - self.max_delay - 1
