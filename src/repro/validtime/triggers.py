"""Tentative and definite triggers in the valid-time model (Section 9.2).

*Tentative* triggers act on tentative values: on every commit, the
temporal component re-performs the incremental evaluation "for each state
starting with the oldest system state that was updated by the
transaction, until the last system state in the history" — implemented
with checkpointed evaluator snapshots so the rollback is to the latest
checkpoint before the oldest retroactively-touched state.

*Definite* triggers act only on definite values: under the maximum-delay
assumption, a state older than DELTA can no longer change, so the
evaluator "only considers the system states that have a time-stamp that is
at least DELTA time units smaller than the current time" — firing is
delayed by at least DELTA, but no rollback is ever needed (purely
incremental).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ValidTimeError
from repro.ptl import ast
from repro.ptl.context import EvalContext
from repro.ptl.incremental import IncrementalEvaluator
from repro.validtime.model import ValidTimeDatabase


@dataclass(frozen=True)
class VTFiring:
    """One trigger firing in the valid-time model."""

    timestamp: int
    bindings: tuple[tuple[str, Any], ...]

    @property
    def binding_dict(self) -> dict:
        return dict(self.bindings)


def _firing_key(timestamp: int, binding: dict) -> tuple:
    return (timestamp, tuple(sorted(binding.items(), key=lambda kv: kv[0])))


class TentativeTrigger:
    """Re-evaluates the condition over the committed history after every
    commit, rolling back to the checkpoint before the oldest state touched
    retroactively."""

    def __init__(
        self,
        vtdb: ValidTimeDatabase,
        condition: ast.Formula,
        ctx: Optional[EvalContext] = None,
        checkpoint_every: int = 1,
    ):
        self.vtdb = vtdb
        self.condition = condition
        self.ctx = ctx or EvalContext()
        self.checkpoint_every = max(1, checkpoint_every)
        self.firings: list[VTFiring] = []
        self._fired_keys: set = set()
        self._evaluator = IncrementalEvaluator(condition, self.ctx)
        #: checkpoints[i] = snapshot of the evaluator before processing
        #: history position i (kept every ``checkpoint_every`` positions).
        self._checkpoints: dict[int, Any] = {0: self._evaluator.snapshot()}
        self._processed = 0  # history positions consumed
        self._timestamps: list[int] = []  # timestamp per processed position
        self.replays = 0  # states re-evaluated due to retroactivity (bench metric)
        vtdb.commit_listeners.append(self._on_commit)

    # -- commit handling ----------------------------------------------------

    def _on_commit(self, txn_id: int, commit_time: int, oldest_valid: int) -> None:
        history = self.vtdb.committed_history()
        # first history position whose timestamp >= oldest touched time
        first_affected = 0
        for i, ts in enumerate(self._timestamps):
            if ts >= oldest_valid:
                first_affected = i
                break
        else:
            first_affected = self._processed
        self._rollback_to(first_affected)
        self._run_from(history)

    def _rollback_to(self, position: int) -> None:
        if position >= self._processed:
            return
        checkpoint_pos = max(
            p for p in self._checkpoints if p <= position
        )
        self._evaluator.restore(self._checkpoints[checkpoint_pos])
        self._processed = checkpoint_pos
        self._timestamps = self._timestamps[:checkpoint_pos]
        self._checkpoints = {
            p: s for p, s in self._checkpoints.items() if p <= checkpoint_pos
        }

    def _run_from(self, history) -> None:
        states = history.states
        for i in range(self._processed, len(states)):
            state = states[i]
            if i % self.checkpoint_every == 0 and i not in self._checkpoints:
                self._checkpoints[i] = self._evaluator.snapshot()
            result = self._evaluator.step(state)
            self.replays += 1
            self._timestamps.append(state.timestamp)
            if result.fired:
                for binding in result.bindings:
                    key = _firing_key(state.timestamp, dict(binding))
                    if key not in self._fired_keys:
                        self._fired_keys.add(key)
                        self.firings.append(
                            VTFiring(state.timestamp, key[1])
                        )
        self._processed = len(states)

    def fired_at(self) -> list[int]:
        return [f.timestamp for f in self.firings]


class DefiniteTrigger:
    """Fires only on states at least DELTA old — delayed but rollback-free."""

    def __init__(
        self,
        vtdb: ValidTimeDatabase,
        condition: ast.Formula,
        ctx: Optional[EvalContext] = None,
    ):
        if vtdb.max_delay is None:
            raise ValidTimeError(
                "definite triggers need a maximum delay DELTA on the database"
            )
        self.vtdb = vtdb
        self.condition = condition
        self.ctx = ctx or EvalContext()
        self.firings: list[VTFiring] = []
        self._evaluator = IncrementalEvaluator(condition, self.ctx)
        self._consumed_through: Optional[int] = None  # last definite ts consumed
        vtdb.commit_listeners.append(lambda *a: self.poll())

    def poll(self) -> None:
        """Consume newly-definite states (call after commits or whenever
        the clock advances).  All commits known *now* contribute; only
        states older than DELTA are consumed (they can no longer change —
        future commits happen strictly after now and reach back at most
        DELTA)."""
        horizon = self.vtdb.definite_horizon()
        history = self.vtdb.committed_history(
            horizon, committed_by=self.vtdb.now
        )
        for state in history.states:
            if (
                self._consumed_through is not None
                and state.timestamp <= self._consumed_through
            ):
                continue
            result = self._evaluator.step(state)
            self._consumed_through = state.timestamp
            if result.fired:
                for binding in result.bindings:
                    self.firings.append(
                        VTFiring(
                            state.timestamp,
                            tuple(sorted(dict(binding).items())),
                        )
                    )

    def fired_at(self) -> list[int]:
        return [f.timestamp for f in self.firings]
