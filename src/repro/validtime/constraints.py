"""Online vs offline satisfaction of temporal integrity constraints in the
valid-time model, their enforcement, and Theorem 2 (Section 9.3).

* **online-satisfied**: at every commit point t, the *committed history at
  time t* (only updates of transactions committed by t) satisfies c.
* **offline-satisfied**: at every commit point t, the prefix up to t of
  the committed history *at time infinity* (all updates, including those
  of transactions that commit after t) satisfies c.

The two differ in valid time (the paper's u1/u2 example) but coincide on
collapsed committed histories — THEOREM 2 — which
:func:`check_theorem2` verifies on any complete history.
"""

from __future__ import annotations

from typing import Optional

from repro.history.history import SystemHistory
from repro.ptl import ast
from repro.ptl.context import EvalContext
from repro.ptl.semantics import satisfies
from repro.validtime.model import ValidTimeDatabase, VTTransaction


def _commit_point_times(history: SystemHistory) -> list[int]:
    return [history[i].timestamp for i in history.commit_points()]


def _satisfied_at_time(
    history: SystemHistory, t: int, constraint: ast.Formula, ctx=None
) -> bool:
    """Does the prefix of ``history`` up to time ``t`` satisfy the
    constraint (at its final state)?  An empty prefix satisfies vacuously."""
    prefix = history.up_to_time(t)
    if len(prefix) == 0:
        return True
    return satisfies(prefix.states, len(prefix) - 1, constraint, {}, ctx)


def online_satisfied(
    vtdb: ValidTimeDatabase, constraint: ast.Formula, ctx=None
) -> bool:
    """c is online-satisfied: satisfied by the committed history at time
    t, for every commit point t."""
    full = vtdb.committed_history()
    for t in _commit_point_times(full):
        committed_at_t = vtdb.committed_history(t)
        if len(committed_at_t) == 0:
            continue
        if not satisfies(
            committed_at_t.states, len(committed_at_t) - 1, constraint, {}, ctx
        ):
            return False
    return True


def offline_satisfied(
    vtdb: ValidTimeDatabase, constraint: ast.Formula, ctx=None
) -> bool:
    """c is offline-satisfied: the committed history at infinity, cut at
    each commit point t, satisfies c."""
    h0 = vtdb.committed_history()
    for t in _commit_point_times(h0):
        if not _satisfied_at_time(h0, t, constraint, ctx):
            return False
    return True


def online_satisfied_on(history: SystemHistory, constraint, ctx=None) -> bool:
    """Online satisfaction evaluated directly on a materialized history
    (used for collapsed histories, where committed-at-t prefixes and
    plain prefixes coincide)."""
    for t in _commit_point_times(history):
        if not _satisfied_at_time(history, t, constraint, ctx):
            return False
    return True


def check_theorem2(
    vtdb: ValidTimeDatabase, constraint: ast.Formula, ctx=None
) -> bool:
    """THEOREM 2: on the collapsed committed history h' of a complete
    history, c is online-satisfied iff it is offline-satisfied.

    Returns True when the equivalence holds (it always should); the
    property test and benchmark E7 call this on random histories.
    """
    if not vtdb.is_complete():
        raise ValueError("Theorem 2 is about complete histories")
    h0 = vtdb.collapsed_committed_history()
    times = _commit_point_times(h0)
    # Online: rebuild the collapsed committed history *at each time t*
    # (updates of transactions committing after t are absent altogether).
    online = all(
        _satisfied_at_last_state(
            vtdb.collapsed_committed_history(t), constraint, ctx
        )
        for t in times
    )
    # Offline: cut the full collapsed history h0 at each t (updates of
    # later-committing transactions are present in principle — collapsing
    # is what pushes them past the cut).
    offline = all(_satisfied_at_time(h0, t, constraint, ctx) for t in times)
    return online == offline


def _satisfied_at_last_state(history: SystemHistory, constraint, ctx=None) -> bool:
    if len(history) == 0:
        return True
    return satisfies(history.states, len(history) - 1, constraint, {}, ctx)


class ConstraintEnforcer:
    """Commit-time enforcement (Section 9.3): "make the auxiliary relation
    changes and invoke the temporal component at every commit point of a
    transaction ... evaluate the temporal condition at commit points in
    the history, starting with the one immediately following the earliest
    update of the current transaction, and ending with the committing
    transaction.  If the condition is violated at any one of these points,
    then the transaction attempting to commit is aborted."

    Enforces both online and offline satisfaction of the resulting
    history (at the price of occasionally aborting transactions that pure
    offline satisfaction would have allowed — the paper's observation).
    """

    def __init__(self, vtdb: ValidTimeDatabase, constraint: ast.Formula, name: str = "vt_constraint"):
        self.vtdb = vtdb
        self.constraint = constraint
        self.name = name
        self.rejections: list[tuple[int, int]] = []  # (txn, commit_time)
        vtdb.commit_validators.append(self._validate)

    def _validate(
        self, trial_history: SystemHistory, txn: VTTransaction, commit_time: int
    ) -> list[str]:
        earliest = min(
            (u.valid_time for u in txn.updates), default=commit_time
        )
        commit_times = [
            t for t in _commit_point_times(trial_history) if earliest <= t <= commit_time
        ]
        # the committing transaction's own commit point is in the trial
        for t in commit_times:
            if not _satisfied_at_time(trial_history, t, self.constraint):
                self.rejections.append((txn.id, commit_time))
                return [
                    f"temporal constraint {self.name!r} violated at commit "
                    f"point t={t}"
                ]
        return []
