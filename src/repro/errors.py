"""Exception hierarchy for the ``repro`` active-database library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Sub-hierarchies mirror the
subsystems: data model, query processing, storage/transactions, PTL, rules,
and the valid-time model.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


# --------------------------------------------------------------------------
# Data model
# --------------------------------------------------------------------------


class DataModelError(ReproError):
    """Base class for schema/type/relation errors."""


class TypeMismatchError(DataModelError):
    """A value does not belong to the declared attribute domain."""


class SchemaError(DataModelError):
    """Malformed schema, duplicate attribute, or schema incompatibility."""


class UnknownAttributeError(SchemaError):
    """An attribute name was referenced that the schema does not define."""


# --------------------------------------------------------------------------
# Query processing
# --------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for query parsing/compilation/evaluation errors."""


class QueryParseError(QueryError):
    """The QUEL-like query text could not be parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class UnknownRelationError(QueryError):
    """A query referenced a relation absent from the catalog."""


class UnknownFunctionError(QueryError):
    """A scalar or aggregate function name is not registered."""


class QueryEvaluationError(QueryError):
    """Runtime failure while evaluating a query (e.g. division by zero)."""


class NotScalarError(QueryError):
    """A scalar value was required but the query produced a relation."""


# --------------------------------------------------------------------------
# Storage and transactions
# --------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for catalog/storage errors."""


class DuplicateRelationError(StorageError):
    """Attempt to create a relation that already exists."""


class SerializationError(StorageError):
    """Evaluator or engine state could not be encoded/decoded."""


class RecoveryError(StorageError):
    """Crash recovery failed: unreadable checkpoint, corrupt WAL record,
    or a mismatch between the checkpoint and the re-registered rules."""


class StorageDegradedError(StorageError):
    """The engine is in degraded read-only mode: the disk stayed
    unwritable after bounded retries, so actions that need durability
    (commits, event appends, spills) are refused cleanly.  Reads, queries
    and rule evaluation over already-committed states continue; call
    :meth:`~repro.engine.ActiveDatabase.exit_degraded` once the disk is
    healthy again."""

    def __init__(self, message: str, reason: str = ""):
        super().__init__(message)
        #: The original failure that forced the engine into degraded mode.
        self.reason = reason


class TransactionError(ReproError):
    """Base class for transaction lifecycle errors."""


class TransactionStateError(TransactionError):
    """Operation invalid in the transaction's current state."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (e.g. by an integrity constraint).

    Carries the constraint (or reason) that caused the abort.
    """

    def __init__(self, txn_id: int, reason: str = ""):
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class QueueFullError(TransactionError):
    """The engine's bounded ingest queue is full (backpressure)."""


# --------------------------------------------------------------------------
# Histories and clock
# --------------------------------------------------------------------------


class HistoryError(ReproError):
    """Violation of the system-history well-formedness constraints."""


class ClockError(ReproError):
    """Timestamps must strictly increase along a history."""


# --------------------------------------------------------------------------
# PTL
# --------------------------------------------------------------------------


class PTLError(ReproError):
    """Base class for Past Temporal Logic errors."""


class PTLParseError(PTLError):
    """The PTL formula text could not be parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class PTLTypeError(PTLError):
    """Ill-typed PTL term or formula."""


class UnsafeFormulaError(PTLError):
    """The formula is unsafe: some free variable is never bound by an
    assignment operator, an event parameter, or a positive equality."""


class EvaluationError(PTLError):
    """Runtime failure inside a PTL evaluator."""


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------


class RuleError(ReproError):
    """Base class for rule system errors."""


class DuplicateRuleError(RuleError):
    """A rule with the same name is already registered."""


class UnknownRuleError(RuleError):
    """Reference to a rule name that is not registered."""


class ActionError(RuleError):
    """An action failed while executing."""


# --------------------------------------------------------------------------
# Valid time
# --------------------------------------------------------------------------


class ValidTimeError(ReproError):
    """Base class for valid-time model errors."""


class RetroactiveLimitError(ValidTimeError):
    """An update's valid time precedes current time by more than DELTA."""


# --------------------------------------------------------------------------
# Event expressions (baseline)
# --------------------------------------------------------------------------


class EventExprError(ReproError):
    """Errors in the event-expression baseline (parse or compile)."""


# --------------------------------------------------------------------------
# Serving layer
# --------------------------------------------------------------------------


class ServingError(ReproError):
    """Base class for multi-tenant serving-layer errors."""


class ProtocolError(ServingError):
    """A session frame was refused: malformed, oversized, invalid, or
    rejected by admission control.  Carries the wire-level error ``type``
    (see :mod:`repro.serve.protocol`) plus structured ``detail`` keys the
    server echoes back in the typed error reply."""

    def __init__(self, type: str, message: str, **detail):
        super().__init__(message)
        self.type = type
        self.detail = dict(detail)


class TenantError(ServingError):
    """A tenant could not be opened, resolved, or evicted."""
