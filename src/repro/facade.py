"""One-stop facade: an active database with its temporal component.

:class:`TemporalDatabase` wires an
:class:`~repro.engine.ActiveDatabase` to a
:class:`~repro.rules.manager.RuleManager` and exposes the operations a
downstream application actually uses — catalog setup, transactions, rule
registration, and querying — without touching the subsystems directly.

    from repro import TemporalDatabase

    tdb = TemporalDatabase()
    tdb.create_relation("STOCK", Schema.of(name=STRING, price=FLOAT))
    tdb.define_query("price", ["n"],
                     "RETRIEVE (S.price) FROM STOCK S WHERE S.name = $n")
    tdb.on("doubled",
           "[t := time] [x := price(IBM)] "
           "previously (price(IBM) <= 0.5 * x & time >= t - 10)",
           lambda ctx: ...)
    tdb.constrain("cap", "price(IBM) <= 1000")
    with tdb.transaction(at_time=8) as txn:
        txn.update("STOCK", lambda r: r["name"] == "IBM",
                   lambda r: {"price": 25.0})
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Mapping, Optional, Sequence

from repro.engine import ActiveDatabase
from repro.query.evaluator import eval_query
from repro.query.parser import parse_query
from repro.rules.manager import RuleManager
from repro.rules.rule import CouplingMode, FireMode


class TemporalDatabase:
    """An active database plus its temporal component."""

    def __init__(
        self,
        start_time: int = 0,
        keep_history: bool = True,
        relevance_filtering: bool = False,
        batch_size: int = 1,
        executed_retention: Optional[int] = None,
        metrics=None,
        trace=None,
        shards: Optional[int] = None,
        shard_runtime: str = "auto",
    ):
        """``metrics=True`` (or an existing registry) turns on the
        observability layer for the engine, the rule manager, and every
        evaluator registered through this facade; ``trace=True`` (or a
        sink) additionally records structured firing/action/violation
        traces.  Both default off — the hot paths then pay a single
        boolean check.

        ``shards=K`` evaluates trigger conditions across K shard workers
        (:class:`~repro.parallel.manager.ShardedRuleManager`) on the
        ``shard_runtime`` backend (``"process"``/``"thread"``/``"auto"``);
        ``None`` keeps the serial in-process manager unless the
        ``REPRO_SHARDS`` environment variable names a shard count (how
        CI reruns the facade-level suites on the sharded backend)."""
        if shards is None:
            import os

            env = os.environ.get("REPRO_SHARDS")
            shards = int(env) if env else None
        self.engine = ActiveDatabase(
            start_time=start_time, keep_history=keep_history, metrics=metrics
        )
        if shards is None:
            self.rules = RuleManager(
                self.engine,
                relevance_filtering=relevance_filtering,
                batch_size=batch_size,
                executed_retention=executed_retention,
                trace=trace,
            )
        else:
            from repro.parallel import ShardedRuleManager

            self.rules = ShardedRuleManager(
                self.engine,
                shards=shards,
                runtime=shard_runtime,
                relevance_filtering=relevance_filtering,
                batch_size=batch_size,
                executed_retention=executed_retention,
                trace=trace,
            )

    # -- catalog -------------------------------------------------------------

    def create_relation(self, name, schema, rows=()):
        return self.engine.create_relation(name, schema, rows)

    def define_query(self, name, params, text):
        return self.engine.define_query(name, params, text)

    def declare_item(self, name, initial):
        return self.engine.declare_item(name, initial)

    # -- rules -----------------------------------------------------------------

    def on(
        self,
        name: str,
        condition,
        action,
        params: Sequence[str] = (),
        domains: Optional[Mapping] = None,
        fire_mode: FireMode = FireMode.ALWAYS,
        coupling: CouplingMode = CouplingMode.T_CA,
        **kwargs,
    ):
        """Register a trigger (``on`` reads naturally at call sites)."""
        return self.rules.add_trigger(
            name,
            condition,
            action,
            params=params,
            domains=domains,
            fire_mode=fire_mode,
            coupling=coupling,
            **kwargs,
        )

    def constrain(self, name: str, constraint, domains=None):
        """Register a temporal integrity constraint."""
        return self.rules.add_integrity_constraint(name, constraint, domains)

    def off(self, name: str):
        """Unregister a rule (trigger, constraint, or monitor) from the
        live system; its evaluator state is released and queued detached
        actions are dropped."""
        return self.rules.remove_rule(name)

    def replace(self, name: str, condition, action, **kwargs):
        """Swap a trigger's definition between two states; temporal
        operators of the new condition start from "now"."""
        return self.rules.replace_rule(name, condition, action, **kwargs)

    def promote(self, name: str):
        """Flip a shadow-deployed trigger live (see ``shadow=True`` on
        :meth:`on`)."""
        return self.rules.promote_rule(name)

    def obligation(
        self,
        name: str,
        formula,
        on_satisfied=None,
        on_violated=None,
        respawn: bool = False,
    ):
        """Attach a future-obligation monitor (e.g.
        ``"always (!@req | eventually[5] @ack)"``)."""
        return self.rules.add_future_monitor(
            name,
            formula,
            on_satisfied=on_satisfied,
            on_violated=on_violated,
            respawn=respawn,
        )

    # -- transactions & events ----------------------------------------------------

    @contextmanager
    def transaction(self, at_time: Optional[int] = None, commit_time: Optional[int] = None):
        """``with tdb.transaction() as txn: ...`` — commits on clean exit,
        aborts if the body raises."""
        txn = self.engine.begin(at_time)
        try:
            yield txn
        except BaseException:
            from repro.storage.transactions import TxnStatus

            if txn.status is TxnStatus.ACTIVE:
                txn.abort(reason="exception in transaction body")
            raise
        txn.commit(commit_time)

    def post_event(self, event, at_time: Optional[int] = None):
        return self.engine.post_event(event, at_time)

    def tick(self, at_time: Optional[int] = None):
        return self.engine.tick(at_time)

    # -- querying --------------------------------------------------------------------

    def query(self, text: str, params: Optional[Mapping[str, Any]] = None):
        """Evaluate query text against the current committed state."""
        return eval_query(parse_query(text), self.engine.state, params or {})

    def scalar(self, text: str, params: Optional[Mapping[str, Any]] = None):
        from repro.query.evaluator import eval_scalar

        return eval_scalar(parse_query(text), self.engine.state, params or {})

    # -- introspection -----------------------------------------------------------------

    @property
    def now(self) -> int:
        return self.engine.now

    @property
    def history(self):
        return self.engine.history

    @property
    def firings(self):
        return self.rules.firings

    # -- observability -----------------------------------------------------------------

    @property
    def metrics(self):
        """The metrics registry (a no-op registry unless enabled)."""
        return self.engine.metrics

    @property
    def trace(self):
        """The trace sink (a no-op sink unless enabled)."""
        return self.rules.trace

    def metrics_json(self, traces: bool = True, indent: int = 2) -> str:
        """Serialize the registry (and, by default, the trace events) as a
        JSON document — what ``python -m repro monitor --metrics-json``
        prints."""
        import json

        payload = self.metrics.to_dict()
        if traces:
            payload["traces"] = self.trace.to_dicts()
        return json.dumps(payload, indent=indent, sort_keys=True)

    def explain_firing(self, record, rendered: bool = False):
        """Explain why a recorded firing happened (see
        :meth:`repro.rules.manager.RuleManager.explain_firing`)."""
        return self.rules.explain_firing(record, rendered=rendered)

    def close(self) -> None:
        """Detach the temporal component (rules stop being evaluated;
        shard workers, if any, are shut down)."""
        self.rules.detach()
