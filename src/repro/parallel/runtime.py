"""Shard execution backends: where the resident workers live.

:class:`ProcessShardRuntime` gives every shard a persistent
``ProcessPoolExecutor(max_workers=1)`` (fork start method): the worker
process holds the shard's plan, database state, and executed store
resident, and each dispatch ships only the delta step records.
:class:`ThreadShardRuntime` hosts the same :class:`ShardWorker` objects
in-process — the fallback for spawn-only platforms, and the cheaper
backend when rule evaluation is too light to amortize IPC.

Both backends run through the same resilience bookkeeping in
:class:`ShardRuntime`: the runtime remembers, per shard, the last
known-good init payload and the *tail* of step records applied since.  A
crashed worker (``BrokenProcessPool`` — or the injected kill in tests) is
rebuilt by re-initialising a fresh worker from the payload and replaying
the tail; evaluation is deterministic, so the rebuilt shard lands in the
exact state the dead one held.  Every ``snapshot_interval`` records the
baseline payload is refreshed from the live worker and the tail
truncated, bounding both replay time and parent-side memory.
"""

from __future__ import annotations

import concurrent.futures as cf
import multiprocessing as mp
from typing import Optional

from repro.errors import RecoveryError
from repro.parallel.worker import (
    ShardWorker,
    _admin_worker,
    _chain_stats_worker,
    _crash_worker,
    _init_worker,
    _snapshot_worker,
    _state_size_worker,
    _step_worker,
)

try:  # pragma: no cover - import location is version-dependent detail
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = cf.process.BrokenProcessPool


class _ShardCrashed(Exception):
    """The thread backend's stand-in for a dead worker process."""


class ShardRuntime:
    """Base backend: crash-rebuild bookkeeping shared by both hosts.

    Subclasses implement ``_start_shard``, ``_submit``, ``_result``,
    ``_snapshot_shard``, ``_state_size_shard``, ``kill_worker``, and
    ``close``; ``_crash_exceptions`` is the tuple that marks a dead
    worker (anything else propagates)."""

    kind = "?"
    _crash_exceptions: tuple = ()

    def __init__(self, snapshot_interval: int = 256):
        self.snapshot_interval = max(1, snapshot_interval)
        #: Last known-good init payload per shard, and the step records
        #: applied since it was taken.
        self._payloads: list[dict] = []
        self._tails: list[list[dict]] = []
        self._rules_payloads: list[list[dict]] = []
        self.rebuilds = 0
        self.started = False

    @property
    def shards(self) -> int:
        return len(self._payloads)

    def start(self, payloads: list[dict], rules_payloads: list[list[dict]]) -> None:
        """Bring up one resident worker per shard (payloads are the
        :class:`~repro.parallel.worker.ShardWorker` init payloads)."""
        if self.started:
            raise RecoveryError("shard runtime already started")
        self._payloads = list(payloads)
        self._tails = [[] for _ in payloads]
        self._rules_payloads = [list(r) for r in rules_payloads]
        for shard, payload in enumerate(payloads):
            self._start_shard(shard, payload)
        self.started = True

    # -- dispatch -----------------------------------------------------------

    def dispatch(self, per_shard: dict[int, list[dict]]) -> dict[int, list[dict]]:
        """Step every listed shard on its records — submissions overlap,
        results are collected per shard.  Dead workers are rebuilt and
        replayed transparently; the caller always gets full results."""
        futures: dict[int, object] = {}
        crashed: list[int] = []
        for shard in sorted(per_shard):
            if not per_shard[shard]:
                continue
            try:
                futures[shard] = self._submit(shard, per_shard[shard])
            except self._crash_exceptions:
                crashed.append(shard)
        results: dict[int, list[dict]] = {}
        for shard, future in futures.items():
            try:
                results[shard] = self._result(future)
            except self._crash_exceptions:
                crashed.append(shard)
            else:
                self._tails[shard].extend(per_shard[shard])
        for shard in crashed:
            results[shard] = self._rebuild_and_step(shard, per_shard[shard])
        for shard in per_shard:
            if len(self._tails[shard]) >= self.snapshot_interval:
                self._refresh_baseline(shard)
        return results

    def _rebuild_and_step(self, shard: int, records: list[dict]) -> list[dict]:
        """Fresh worker from the baseline payload, tail replayed, then the
        in-flight records applied.  A second crash during the rebuild is
        not survivable and propagates."""
        self.rebuilds += 1
        self._start_shard(shard, self._payloads[shard])
        tail = self._tails[shard]
        if tail:
            self._result(self._submit(shard, tail))
        out = self._result(self._submit(shard, records))
        self._tails[shard].extend(records)
        return out

    def admin(
        self, shard: int, ops: list[dict], rules_payload: list[dict]
    ) -> None:
        """Apply rule-base admin operations (hot add/remove/shadow flip)
        to one shard, then immediately re-baseline it: the crash-replay
        tail holds only step records, so a baseline predating the change
        would resurrect the old rule base on rebuild.  ``rules_payload``
        is the shard's canonical spec list *after* the change."""
        self._rules_payloads[shard] = list(rules_payload)
        try:
            self._result(self._submit_admin(shard, ops))
            snap = self._snapshot_shard(shard, rules_payload)
        except self._crash_exceptions:
            # The worker died before the change was captured: rebuild
            # from the old baseline, replay the tail, re-apply.  A
            # second crash here is not survivable and propagates.
            self.rebuilds += 1
            self._start_shard(shard, self._payloads[shard])
            if self._tails[shard]:
                self._result(self._submit(shard, self._tails[shard]))
            self._result(self._submit_admin(shard, ops))
            snap = self._snapshot_shard(shard, rules_payload)
        self._payloads[shard] = snap
        self._tails[shard] = []

    def _refresh_baseline(self, shard: int) -> None:
        try:
            snap = self._snapshot_shard(shard, self._rules_payloads[shard])
        except self._crash_exceptions:
            # The worker died under the snapshot request: rebuild it from
            # the old baseline and keep that baseline for now.
            self.rebuilds += 1
            self._start_shard(shard, self._payloads[shard])
            if self._tails[shard]:
                self._result(self._submit(shard, self._tails[shard]))
            return
        self._payloads[shard] = snap
        self._tails[shard] = []

    # -- snapshots & introspection ------------------------------------------

    def snapshot_all(self) -> list[dict]:
        """Fresh init payloads from every live worker (also adopted as
        the new rebuild baselines) — checkpointing runs through this."""
        for shard in range(self.shards):
            self._refresh_baseline(shard)
        return [dict(p) for p in self._payloads]

    def state_sizes(self) -> list[int]:
        sizes = []
        for shard in range(self.shards):
            try:
                sizes.append(self._state_size_shard(shard))
            except self._crash_exceptions:
                sizes.append(0)
        return sizes

    def chain_stats(self) -> list[dict]:
        """Per-shard compiled-chain counters (``builds``/``patches``)
        from the resident workers; a dead worker reports zeros."""
        stats = []
        for shard in range(self.shards):
            try:
                stats.append(self._chain_stats_shard(shard))
            except self._crash_exceptions:
                stats.append({"builds": 0, "patches": 0})
        return stats

    # -- subclass surface ---------------------------------------------------

    def _start_shard(self, shard: int, payload: dict) -> None:
        raise NotImplementedError

    def _submit(self, shard: int, records: list[dict]):
        raise NotImplementedError

    def _submit_admin(self, shard: int, ops: list[dict]):
        raise NotImplementedError

    def _result(self, future):
        raise NotImplementedError

    def _snapshot_shard(self, shard: int, rules_payload: list[dict]) -> dict:
        raise NotImplementedError

    def _state_size_shard(self, shard: int) -> int:
        raise NotImplementedError

    def _chain_stats_shard(self, shard: int) -> dict:
        raise NotImplementedError

    def kill_worker(self, shard: int) -> None:
        """Test hook: make the shard's worker die as a crashed process
        would, exercising the rebuild path on the next dispatch."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class ProcessShardRuntime(ShardRuntime):
    """One persistent single-worker process pool per shard."""

    kind = "process"
    _crash_exceptions = (BrokenProcessPool,)

    def __init__(
        self, snapshot_interval: int = 256, start_method: str = "fork"
    ):
        super().__init__(snapshot_interval)
        if start_method not in mp.get_all_start_methods():
            raise RecoveryError(
                f"multiprocessing start method {start_method!r} is not "
                f"available on this platform"
            )
        self._mp_context = mp.get_context(start_method)
        self._pools: list[Optional[cf.ProcessPoolExecutor]] = []

    def _start_shard(self, shard: int, payload: dict) -> None:
        while len(self._pools) <= shard:
            self._pools.append(None)
        old = self._pools[shard]
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        pool = cf.ProcessPoolExecutor(
            max_workers=1, mp_context=self._mp_context
        )
        self._pools[shard] = pool
        # Synchronous init: a bad payload should fail here, not at the
        # first dispatch.
        pool.submit(_init_worker, payload).result()

    def _submit(self, shard: int, records: list[dict]):
        return self._pools[shard].submit(_step_worker, records)

    def _submit_admin(self, shard: int, ops: list[dict]):
        return self._pools[shard].submit(_admin_worker, ops)

    def _result(self, future):
        return future.result()

    def _snapshot_shard(self, shard: int, rules_payload: list[dict]) -> dict:
        return self._pools[shard].submit(
            _snapshot_worker, rules_payload
        ).result()

    def _state_size_shard(self, shard: int) -> int:
        return self._pools[shard].submit(_state_size_worker).result()

    def _chain_stats_shard(self, shard: int) -> dict:
        return self._pools[shard].submit(_chain_stats_worker).result()

    def kill_worker(self, shard: int) -> None:
        try:
            self._pools[shard].submit(_crash_worker).result()
        except self._crash_exceptions:
            pass

    def close(self) -> None:
        for pool in self._pools:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        self._pools = []


class ThreadShardRuntime(ShardRuntime):
    """In-process fallback: the same :class:`ShardWorker` objects, held
    directly and stepped on a small thread pool.  Runs the identical
    payload/record protocol, so conformance between backends is a test
    over data, not code paths."""

    kind = "thread"
    _crash_exceptions = (_ShardCrashed,)

    def __init__(self, snapshot_interval: int = 256):
        super().__init__(snapshot_interval)
        self._workers: list[Optional[ShardWorker]] = []
        self._pool: Optional[cf.ThreadPoolExecutor] = None

    def _ensure_pool(self) -> cf.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = cf.ThreadPoolExecutor(
                max_workers=max(1, self.shards or 1),
                thread_name_prefix="repro-shard",
            )
        return self._pool

    def _start_shard(self, shard: int, payload: dict) -> None:
        while len(self._workers) <= shard:
            self._workers.append(None)
        self._workers[shard] = ShardWorker(payload)

    def _worker(self, shard: int) -> ShardWorker:
        worker = self._workers[shard]
        if worker is None:
            raise _ShardCrashed(f"shard {shard} worker is down")
        return worker

    def _submit(self, shard: int, records: list[dict]):
        worker = self._worker(shard)
        return self._ensure_pool().submit(worker.step, records)

    def _submit_admin(self, shard: int, ops: list[dict]):
        worker = self._worker(shard)
        return self._ensure_pool().submit(worker.admin, ops)

    def _result(self, future):
        try:
            return future.result()
        except _ShardCrashed:
            raise

    def _snapshot_shard(self, shard: int, rules_payload: list[dict]) -> dict:
        return self._worker(shard).snapshot(rules_payload)

    def _state_size_shard(self, shard: int) -> int:
        return self._worker(shard).state_size()

    def _chain_stats_shard(self, shard: int) -> dict:
        return self._worker(shard).chain_stats()

    def kill_worker(self, shard: int) -> None:
        self._workers[shard] = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._workers = []


def make_runtime(kind: str = "auto", **kwargs) -> ShardRuntime:
    """Build a shard runtime: ``"process"``, ``"thread"``, or ``"auto"``
    (process where ``fork`` is available, thread otherwise)."""
    if kind == "auto":
        kind = (
            "process" if "fork" in mp.get_all_start_methods() else "thread"
        )
    if kind == "process":
        return ProcessShardRuntime(**kwargs)
    if kind == "thread":
        return ThreadShardRuntime(**kwargs)
    raise ValueError(f"unknown shard runtime kind {kind!r}")
