"""Dependency-aware rule partitioning.

Rules only interact through the database and the ``executed`` relation
(Section 7), so a rule base splits into independently evaluable modules
along those couplings:

* a rule whose condition mentions ``executed(r, ...)`` must live in the
  same shard as rule ``r`` — the worker-resident executed store is the
  only one visible at evaluation time, and co-sharding keeps it exact;
* rules with overlapping *write-sets* (the database items their actions
  write, declared at registration) are co-sharded, so the read-your-own-
  shard locality argument of ``docs/PARALLEL.md`` holds per shard.

Read-sets come from :func:`repro.query.deps.query_deps` applied to every
query embedded in the condition; couplings induce a union-find over the
rule base, and the resulting groups are bin-packed onto K shards
deterministically (largest group first, least-loaded shard, ties to the
lowest shard id), so the same rule base always yields the same layout —
a property the recovery fingerprints rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.ptl import ast
from repro.query.deps import query_deps


@dataclass(frozen=True)
class RuleProfile:
    """What the partitioner knows about one rule."""

    name: str
    #: Database items the condition's queries read.
    reads: frozenset[str]
    #: Database items the rule's action writes (declared; empty when the
    #: action is an opaque callable with no declaration).
    writes: frozenset[str]
    #: Rule names referenced through ``executed(r, ...)`` atoms.
    executed_refs: frozenset[str]
    #: Event names appearing in event atoms (locality hint only).
    events: frozenset[str]


def _queries_of(formula: ast.Formula):
    """Every query AST embedded in ``formula``, including queries inside
    aggregate terms and assignment operators."""

    def from_term(term: ast.Term):
        if isinstance(term, ast.QueryT):
            yield term.query
        elif isinstance(term, ast.AggT):
            yield term.query
            yield from from_formula(term.start)
            yield from from_formula(term.sample)
        elif isinstance(term, ast.FuncT):
            for a in term.args:
                yield from from_term(a)

    def from_formula(f: ast.Formula):
        if isinstance(f, ast.Comparison):
            yield from from_term(f.left)
            yield from from_term(f.right)
        elif isinstance(f, ast.InQuery):
            yield f.query
            for a in f.args:
                yield from from_term(a)
        elif isinstance(f, ast.Assign):
            yield f.query
            yield from from_formula(f.body)
        elif isinstance(f, (ast.EventAtom, ast.ExecutedAtom, ast.BoolConst)):
            return
        else:
            for child in f.children():
                yield from from_formula(child)

    yield from from_formula(formula)


def rule_profile(
    name: str,
    formula: ast.Formula,
    writes: Sequence[str] = (),
) -> RuleProfile:
    """Analyze one rule's condition (plus its declared write-set)."""
    reads: set[str] = set()
    for query in _queries_of(formula):
        reads |= query_deps(query).items
    executed_refs = frozenset(
        sub.rule for sub in ast.walk(formula) if isinstance(sub, ast.ExecutedAtom)
    )
    events = frozenset(
        sub.name for sub in ast.walk(formula) if isinstance(sub, ast.EventAtom)
    )
    return RuleProfile(
        name=name,
        reads=frozenset(reads),
        writes=frozenset(writes),
        executed_refs=executed_refs,
        events=events,
    )


@dataclass(frozen=True)
class RulePartition:
    """A deterministic assignment of rules to shards."""

    shards: int
    #: rule name -> shard id.
    assignment: dict
    #: Coupled groups (each a tuple of rule names, registration order).
    groups: tuple

    def shard_of(self, name: str) -> int:
        return self.assignment[name]

    def rules_of(self, shard: int) -> list[str]:
        return [n for n, s in self.assignment.items() if s == shard]


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        while self.parent[i] != i:
            self.parent[i] = self.parent[self.parent[i]]
            i = self.parent[i]
        return i

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Smaller root wins: group identity is the earliest member.
            self.parent[max(ra, rb)] = min(ra, rb)


def partition_rules(
    profiles: Sequence[RuleProfile],
    shards: int,
    coupled: Optional[Sequence[tuple[str, str]]] = None,
) -> RulePartition:
    """Partition ``profiles`` (registration order) into ``shards`` shards.

    Couplings (same shard):

    * A references ``executed(B, ...)`` — in either direction;
    * writes(A) ∩ writes(B) is non-empty;
    * any extra ``coupled`` pairs the caller supplies.

    A reference to an unknown rule name through ``executed`` couples
    nothing (the atom can still bind against records the application
    seeds into the store); unknown names in ``coupled`` raise.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    names = [p.name for p in profiles]
    index = {name: i for i, name in enumerate(names)}
    if len(index) != len(names):
        raise ValueError("duplicate rule names in partition input")

    uf = _UnionFind(len(profiles))
    for i, profile in enumerate(profiles):
        for ref in profile.executed_refs:
            j = index.get(ref)
            if j is not None:
                uf.union(i, j)
    # Write-set overlap: itemize writers per item.
    writers: dict[str, int] = {}
    for i, profile in enumerate(profiles):
        for item in sorted(profile.writes):
            first = writers.setdefault(item, i)
            if first != i:
                uf.union(first, i)
    for a, b in coupled or ():
        if a not in index or b not in index:
            raise ValueError(f"coupled pair ({a!r}, {b!r}) names unknown rules")
        uf.union(index[a], index[b])

    by_root: dict[int, list[int]] = {}
    for i in range(len(profiles)):
        by_root.setdefault(uf.find(i), []).append(i)
    # Deterministic packing: biggest groups first (ties by earliest
    # member), each onto the least-loaded shard (ties to the lowest id).
    groups = sorted(by_root.values(), key=lambda g: (-len(g), g[0]))
    loads = [0] * shards
    assignment: dict[str, int] = {}
    for group in groups:
        shard = min(range(shards), key=lambda s: (loads[s], s))
        loads[shard] += len(group)
        for i in group:
            assignment[names[i]] = shard
    return RulePartition(
        shards=shards,
        assignment={name: assignment[name] for name in names},
        groups=tuple(tuple(names[i] for i in g) for g in groups),
    )
