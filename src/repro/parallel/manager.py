"""Sharded rule manager: the temporal component across K shard workers.

:class:`ShardedRuleManager` is a drop-in
:class:`~repro.rules.manager.RuleManager` whose *trigger condition
evaluation* runs in shard workers instead of in-process.  Registration
collects rules (plus their declared write-sets) without building
evaluators; the first flush *seals* the rule base — partitions it with
:func:`~repro.parallel.partition.partition_rules`, ships one init payload
per shard (rule conditions as PTL text, the query catalog, the baseline
database items, the executed-store contents), and brings up the runtime.
After sealing, each flushed batch of system states becomes one dispatch
round-trip per shard carrying only WAL-shaped delta records.

Everything with side effects stays in the parent: actions (with the
inherited retry/quarantine/isolation machinery), the authoritative
executed store and firing log, integrity constraints (trial evaluation
needs commit-veto timing no worker can provide), and future-obligation
monitors.  The parent merges worker results *per state, in the serial
manager's rule order* (priority desc, registration order) before any
action runs, so firing order — and therefore action order — is
byte-identical to serial evaluation; the conformance suite
(``tests/test_conformance.py``) holds every backend to that.

Shard-level relevance gating: a shard whose rules are all *stateless*
(in the :func:`~repro.rules.manager.infer_relevant_events` sense) and all
event-gated is only dispatched states carrying one of its rules' relevant
events — the serial per-rule skip, hoisted to whole shards, which is what
makes low-coupling rule bases scale with K (benchmark E15).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.errors import (
    DuplicateRuleError,
    RecoveryError,
    RuleError,
    UnknownRuleError,
)
from repro.history.state import SystemState
from repro.obs.trace import FIRING, LIFECYCLE, MONITOR, SHADOW_FIRING
from repro.parallel.partition import (
    RulePartition,
    partition_rules,
    rule_profile,
)
from repro.parallel.runtime import ShardRuntime, make_runtime
from repro.parallel.worker import (
    WORKER_FORMAT,
    decode_bindings,
    encode_domains,
)
from repro.ptl.compiled import ptl_compile_enabled
from repro.ptl.safety import check_safety
from repro.rules.actions import as_action
from repro.rules.manager import (
    ConditionLike,
    RuleManager,
    _RegisteredRule,
    infer_relevant_events,
)
from repro.rules.rule import CouplingMode, FireMode, FiringRecord, Rule
from repro.storage.persist import _decode_item, _encode_item, _encode_value
from repro.storage.snapshot import DatabaseState

#: Distinct from the serial manager's format so restoring a sharded
#: checkpoint into a serial manager (or vice versa) fails loudly.
#: ``sharded-2`` additionally records the shard assignment and rule
#: index map verbatim plus per-rule condition fingerprints, birth, and
#: shadow flags — recomputing the partition cannot verify a rule base
#: that changed after sealing, and the fingerprints make drift-tolerant
#: restores (``strict=False``) possible.
_SHARDED_FORMAT_V1 = "sharded-1"
_SHARDED_FORMAT = "sharded-2"


class ShardedRuleManager(RuleManager):
    """A :class:`RuleManager` evaluating trigger conditions across K
    resident shard workers (see the module docstring for the split of
    responsibilities)."""

    def __init__(
        self,
        engine,
        shards: int = 2,
        runtime: Union[str, ShardRuntime] = "auto",
        snapshot_interval: int = 256,
        coupled: Optional[Sequence[tuple[str, str]]] = None,
        **kwargs,
    ):
        """``runtime`` is ``"process"``/``"thread"``/``"auto"`` (see
        :func:`~repro.parallel.runtime.make_runtime`) or an unstarted
        :class:`~repro.parallel.runtime.ShardRuntime`.  ``coupled`` adds
        explicit co-sharding pairs on top of the inferred couplings.
        Remaining keyword arguments go to :class:`RuleManager`
        (``shared_plan`` is forced off — the plans live in the workers)."""
        kwargs.pop("shared_plan", None)
        super().__init__(engine, shared_plan=False, **kwargs)
        self.shards = max(1, shards)
        self._runtime_spec = runtime
        self._snapshot_interval = snapshot_interval
        self._coupled = list(coupled or ())
        self.runtime: Optional[ShardRuntime] = None
        self._sealed = False
        self._partition: Optional[RulePartition] = None
        self._rule_index: dict[str, int] = {}
        self._rule_writes: dict[str, tuple[str, ...]] = {}
        self._rule_domains: dict[str, dict] = {}
        #: Per shard: the relevance gate (frozenset of event names, or
        #: None = dispatch everything), the last database state the shard
        #: saw, and the last dispatched seq.
        self._gates: list[Optional[frozenset[str]]] = []
        self._shard_prev: list[DatabaseState] = []
        self._shard_seq: list[Optional[int]] = []
        #: The database state just before the next state to dispatch —
        #: advanced by ruleless flushes until the rule base seals.
        self._baseline_db: DatabaseState = engine.db.state
        self._m_shards = self.metrics.gauge("shard_count")
        self._m_rebuilds = self.metrics.gauge("shard_worker_rebuilds")

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_trigger(
        self,
        name: str,
        condition: ConditionLike,
        action,
        params: Sequence[str] = (),
        domains: Optional[Mapping] = None,
        coupling: CouplingMode = CouplingMode.T_CA,
        fire_mode: FireMode = FireMode.ALWAYS,
        relevant_events: Optional[Iterable[str]] = None,
        rewrite_aggregates: bool = False,
        record_executions: bool = True,
        priority: int = 0,
        writes: Sequence[str] = (),
        shadow: bool = False,
    ) -> Rule:
        """Register a trigger (no evaluator is built here — conditions
        compile inside the shard workers at seal time).  ``writes``
        declares the database items the action writes; rules with
        overlapping write-sets are co-sharded.

        Registration works on a live (sealed) manager too: the rule is
        placed on the shard of any rule it couples with — partners
        spread over several shards cannot be joined after sealing and
        raise — or the least-loaded shard, and shipped to the resident
        worker; its temporal operators start from "now"."""
        if rewrite_aggregates:
            raise RuleError(
                "rewrite_aggregates is not supported under sharded "
                "evaluation (its generated item names are process-local); "
                "use the direct aggregate pipeline"
            )
        if name in self._rules or name in self._ics or name in self._monitors:
            raise DuplicateRuleError(f"rule {name!r} already registered")
        # May flush — and therefore seal — so the placement decision
        # below sees the final pre-registration layout.
        self._lifecycle_sync("register", name)
        formula = self._parse_condition(condition)
        domain_map = self._parse_domains(domains)
        check_safety(formula, domain_map.keys())
        shard = None
        if self._sealed:
            # Fail before touching any bookkeeping: a live deployment
            # needs the text round-trip and an unambiguous placement.
            self._check_round_trip(name, formula)
            shard = self._place_rule(name, formula, writes)
        rule = Rule(
            name=name,
            condition=formula,
            action=as_action(action),
            params=tuple(params),
            coupling=coupling,
            fire_mode=fire_mode,
            relevant_events=(
                frozenset(relevant_events)
                if relevant_events is not None
                else None
            ),
            record_executions=record_executions,
            priority=priority,
            shadow=shadow,
        )
        stateless = infer_relevant_events(formula) is not None
        if rule.relevant_events is None and self.relevance_filtering:
            inferred = infer_relevant_events(formula)
            if inferred is not None:
                rule.relevant_events = inferred
        registered = _RegisteredRule(
            rule, None, stateless, registry=self.metrics,
            birth=self.states_seen,
        )
        self._rules[name] = registered
        self._rule_writes[name] = tuple(writes)
        self._rule_domains[name] = domain_map
        if shard is not None:
            self._deploy_live(name, shard)
        if self._obs_on:
            if self.states_seen > 0:
                self.metrics.counter("rules_added_live_total").inc()
            self._m_shadow.set(len(self.shadow_rules()))
            self.trace.emit(
                LIFECYCLE, op="add", rule=name, shadow=shadow,
                birth=registered.birth,
            )
        return rule

    def _check_round_trip(self, name: str, formula) -> None:
        reparsed = self._parse_condition(str(formula))
        if reparsed != formula:
            raise RuleError(
                f"rule {name!r}: condition does not round-trip "
                f"through its text form — was a named query it uses "
                f"redefined after registration?\n"
                f"  registered: {formula}\n"
                f"  re-parsed:  {reparsed}"
            )

    def _place_rule(self, name: str, formula, writes: Sequence[str]) -> int:
        """Choose a live shard for a post-seal registration: a rule
        coupled to existing rules (``executed()`` references in either
        direction, write-set overlap, or an explicit ``coupled`` pair)
        joins its partners' shard; an uncoupled rule goes to the
        least-loaded shard (ties to the lowest id)."""
        profile = rule_profile(name, formula, tuple(writes))
        pairs = {frozenset(p) for p in self._coupled}
        partners = set()
        for other, reg in self._rules.items():
            if other == name:
                continue
            other_profile = rule_profile(
                other, reg.rule.condition, self._rule_writes[other]
            )
            if (
                other in profile.executed_refs
                or name in other_profile.executed_refs
                or (profile.writes & other_profile.writes)
                or frozenset((name, other)) in pairs
            ):
                partners.add(other)
        # Partners not yet placed themselves (several rules being added
        # at once, e.g. a drift restore) are placed by their own turn.
        shards = {
            self._partition.shard_of(p)
            for p in partners
            if p in self._partition.assignment
        }
        if len(shards) > 1:
            raise RuleError(
                f"cannot register rule {name!r} on the live runtime: it "
                f"couples rules already placed on different shards "
                f"({sorted(partners)})"
            )
        if shards:
            return shards.pop()
        loads = [0] * self.shards
        for shard in self._partition.assignment.values():
            loads[shard] += 1
        return min(range(self.shards), key=lambda s: (loads[s], s))

    def _deploy_live(self, name: str, shard: int) -> None:
        """Extend the sealed layout with a just-registered rule and ship
        it to the owning shard's resident worker."""
        self._partition = RulePartition(
            shards=self._partition.shards,
            assignment={**self._partition.assignment, name: shard},
            # Seal-time coupling groups are not re-derived for hot adds.
            groups=self._partition.groups + ((name,),),
        )
        self._rule_index[name] = (
            max(self._rule_index.values(), default=-1) + 1
        )
        rules_payloads = self._build_rules_payloads()
        self._gates = self._compute_gates(rules_payloads)
        self.runtime.admin(
            shard,
            [{"op": "add", "spec": self._rule_spec(name)}],
            rules_payloads[shard],
        )
        if self._obs_on:
            self.metrics.gauge("shard_rules", shard=str(shard)).set(
                len(rules_payloads[shard])
            )

    def remove_rule(self, name: str) -> None:
        if (
            name not in self._rules
            and name not in self._ics
            and name not in self._monitors
        ):
            raise UnknownRuleError(f"no rule named {name!r}")
        # May flush — and therefore seal — so the shard to notify below
        # reflects the final layout.
        self._lifecycle_sync("remove", name)
        shard = None
        if self._sealed and name in self._rules:
            shard = self._partition.shard_of(name)
        super().remove_rule(name)
        self._rule_writes.pop(name, None)
        self._rule_domains.pop(name, None)
        if shard is not None:
            assignment = dict(self._partition.assignment)
            del assignment[name]
            self._partition = RulePartition(
                shards=self._partition.shards,
                assignment=assignment,
                groups=tuple(
                    g
                    for g in (
                        tuple(n for n in group if n != name)
                        for group in self._partition.groups
                    )
                    if g
                ),
            )
            # Other rules keep their worker-protocol indices.
            del self._rule_index[name]
            rules_payloads = self._build_rules_payloads()
            self._gates = self._compute_gates(rules_payloads)
            self.runtime.admin(
                shard, [{"op": "remove", "name": name}], rules_payloads[shard]
            )
            if self._obs_on:
                self.metrics.gauge("shard_rules", shard=str(shard)).set(
                    len(rules_payloads[shard])
                )

    def promote_rule(self, name: str) -> None:
        if name not in self._rules:
            raise UnknownRuleError(f"no trigger named {name!r}")
        self._lifecycle_sync("promote", name)
        was_shadow = self._rules[name].rule.shadow
        super().promote_rule(name)
        if was_shadow and self._sealed:
            # The worker's copy gates its executed-store recording; keep
            # it in step with the parent's flag.
            shard = self._partition.shard_of(name)
            rules_payloads = self._build_rules_payloads()
            self.runtime.admin(
                shard,
                [{"op": "set_shadow", "name": name, "shadow": False}],
                rules_payloads[shard],
            )

    # ------------------------------------------------------------------
    # Sealing: partition + worker bring-up
    # ------------------------------------------------------------------

    def _rule_spec(self, name: str) -> dict:
        reg = self._rules[name]
        rule = reg.rule
        return {
            "index": self._rule_index[name],
            "name": name,
            "formula": str(rule.condition),
            "params": list(rule.params),
            "coupling": rule.coupling.value,
            "fire_mode": rule.fire_mode.value,
            "relevant_events": (
                None
                if rule.relevant_events is None
                else sorted(rule.relevant_events)
            ),
            "record_executions": rule.record_executions,
            "priority": rule.priority,
            "shadow": rule.shadow,
            "domains": encode_domains(self._rule_domains[name]),
            "prev": [],
        }

    def _compute_partition(self) -> RulePartition:
        profiles = [
            rule_profile(
                name,
                self._rules[name].rule.condition,
                self._rule_writes[name],
            )
            for name in self._rules
        ]
        return partition_rules(profiles, self.shards, coupled=self._coupled)

    def _build_rules_payloads(self) -> list[list[dict]]:
        payloads: list[list[dict]] = [[] for _ in range(self.shards)]
        for name in self._rules:
            payloads[self._partition.shard_of(name)].append(
                self._rule_spec(name)
            )
        return payloads

    def _compute_gates(
        self, rules_payloads: list[list[dict]]
    ) -> list[Optional[frozenset[str]]]:
        gates: list[Optional[frozenset[str]]] = []
        for shard in range(self.shards):
            regs = [self._rules[s["name"]] for s in rules_payloads[shard]]
            if not regs:
                # An empty shard never needs a state.
                gates.append(frozenset())
            elif all(
                r.stateless and r.rule.relevant_events is not None
                for r in regs
            ):
                gates.append(
                    frozenset().union(
                        *(r.rule.relevant_events for r in regs)
                    )
                )
            else:
                gates.append(None)
        return gates

    def _check_round_trips(self) -> None:
        """Worker conditions travel as PTL text: every registered
        condition must re-parse to itself under the *current* catalog
        (a named query redefined since registration breaks this)."""
        for name, reg in self._rules.items():
            self._check_round_trip(name, reg.rule.condition)

    def _make_runtime(self) -> ShardRuntime:
        if isinstance(self._runtime_spec, ShardRuntime):
            if self._runtime_spec.started:
                raise RuleError("shard runtime instance already started")
            return self._runtime_spec
        return make_runtime(
            self._runtime_spec, snapshot_interval=self._snapshot_interval
        )

    def _engine_queries(self) -> dict:
        queries = self.engine.db.queries
        return {
            name: {
                "params": list(queries.get(name).params),
                "text": str(queries.get(name).body),
            }
            for name in queries.names()
        }

    def _seal(self) -> None:
        self._rule_index = {n: i for i, n in enumerate(self._rules)}
        self._check_round_trips()
        self._partition = self._compute_partition()
        rules_payloads = self._build_rules_payloads()
        self._gates = self._compute_gates(rules_payloads)
        base_items = {
            name: _encode_item(self._baseline_db.raw_item(name))
            for name in self._baseline_db.item_names()
        }
        queries = self._engine_queries()
        executed = self.executed.to_state()
        payloads = [
            {
                "format": WORKER_FORMAT,
                "shard": shard,
                "retention": self.executed_retention,
                "seq": None,
                "items": base_items,
                "queries": queries,
                "executed": executed,
                "rules": rules_payloads[shard],
                "plan": None,
                "ptl_compile": ptl_compile_enabled(),
            }
            for shard in range(self.shards)
        ]
        runtime = self._make_runtime()
        runtime.start(payloads, rules_payloads)
        self.runtime = runtime
        self._shard_prev = [self._baseline_db] * self.shards
        self._shard_seq = [None] * self.shards
        self._sealed = True
        if self._obs_on:
            self._m_shards.set(self.shards)
            for shard in range(self.shards):
                self.metrics.gauge(
                    "shard_rules", shard=str(shard)
                ).set(len(rules_payloads[shard]))

    # ------------------------------------------------------------------
    # Flush: encode -> dispatch -> merge -> act
    # ------------------------------------------------------------------

    def _encode_record(self, state, shard: int) -> dict:
        prev = self._shard_prev[shard]
        changed = state.db.changed_items(prev)
        record = {
            "seq": state.index,
            "ts": state.timestamp,
            "events": [
                [e.name, [_encode_value(p) for p in e.params]]
                for e in sorted(state.events, key=str)
            ],
            "changes": {
                name: _encode_item(state.db.raw_item(name))
                for name in changed
            },
            # Exact equality diff against what the shard last saw — a
            # sound delta even across states a gated shard skipped.
            "delta": sorted(changed),
        }
        self._shard_prev[shard] = state.db
        self._shard_seq[shard] = state.index
        return record

    def flush(self) -> None:
        batch, self._batch = self._batch, []
        if batch and self._rules and not self._sealed:
            self._seal()
        if not self._sealed:
            for state in batch:
                self._baseline_db = state.db
                self._step_monitors(state)
        else:
            self._flush_sealed(batch)
        if self.executed_retention is not None and batch:
            horizon = batch[-1].timestamp - self.executed_retention
            self.executed.discard_before(horizon)
        if self._obs_on:
            self._m_batch.set(len(self._batch))
            self._m_rebuilds.set(
                0 if self.runtime is None else self.runtime.rebuilds
            )

    def _flush_sealed(self, batch: list) -> None:
        obs = self._obs_on
        per_shard: dict[int, list[dict]] = {}
        dispatched: dict[int, int] = {}
        for state in batch:
            names = state.event_names()
            for shard in range(self.shards):
                gate = self._gates[shard]
                if gate is not None and not (gate & names):
                    continue
                per_shard.setdefault(shard, []).append(
                    self._encode_record(state, shard)
                )
                dispatched[shard] = dispatched.get(shard, 0) + 1
        results = self.runtime.dispatch(per_shard)
        if obs:
            for shard, count in dispatched.items():
                self.metrics.counter(
                    "shard_dispatched_states_total", shard=str(shard)
                ).inc(count)
            skipped = len(batch) * self.shards - sum(dispatched.values())
            if skipped:
                self.metrics.counter(
                    "shard_gated_states_total"
                ).inc(skipped)
        fired_by_seq: dict[int, dict[int, list[dict]]] = {}
        for shard, records in results.items():
            for record in records:
                by_index = fired_by_seq.setdefault(record["seq"], {})
                for index, bindings in record["fired"]:
                    by_index[index] = decode_bindings(bindings)
        for state in batch:
            self._merge_state(state, fired_by_seq.get(state.index, {}))

    def _merge_state(self, state, by_index: dict[int, list[dict]]) -> None:
        """Re-create the serial manager's per-state pass from the worker
        results: same rule order, same firing records, same action
        timing (all of a state's T-CA actions after all its rules)."""
        obs = self._obs_on
        to_execute: list[tuple[Rule, dict]] = []
        names = state.event_names()
        for reg in self._ordered_rules():
            rule = reg.rule
            if rule.relevant_events is not None and not (
                rule.relevant_events & names
            ):
                reg.stats.skips += 1
                if obs:
                    reg.m_skips.inc()
                continue
            reg.stats.evaluations += 1
            bindings = by_index.get(self._rule_index[rule.name], [])
            for binding in bindings:
                reg.stats.firings += 1
                record = FiringRecord(
                    rule.name,
                    tuple(sorted(binding.items(), key=lambda kv: kv[0])),
                    state.index,
                    state.timestamp,
                    shadow=rule.shadow,
                )
                self._firings.append(record)
                if obs:
                    reg.m_firings.inc()
                    self.trace.emit(
                        SHADOW_FIRING if rule.shadow else FIRING,
                        timestamp=state.timestamp,
                        rule=rule.name,
                        state_index=state.index,
                        bindings=dict(record.bindings),
                        shard=self._partition.shard_of(rule.name),
                    )
                if rule.shadow:
                    # Same contract as the serial manager: observable
                    # firing, suppressed action, no executed record (the
                    # worker suppressed its store-side half already).
                    if reg.m_shadow_firings is not None:
                        reg.m_shadow_firings.inc()
                    continue
                if rule.coupling is CouplingMode.T_CA:
                    to_execute.append((rule, binding))
                elif rule.coupling is CouplingMode.T_C_A:
                    self._pending_actions.append((rule, binding, state))
        if obs:
            self._m_pending.set(len(self._pending_actions))
        for rule, binding in to_execute:
            self._execute(rule, binding, state)
        self._step_monitors(state)

    def _step_monitors(self, state) -> None:
        obs = self._obs_on
        for monitor in list(self._monitors.values()):
            before = len(monitor.resolutions)
            monitor.step(state, self.engine)
            if obs and len(monitor.resolutions) > before:
                verdict, ts = monitor.resolutions[-1]
                self.metrics.counter(
                    "monitor_resolutions_total",
                    monitor=monitor.name,
                    verdict=verdict,
                ).inc()
                self.trace.emit(
                    MONITOR, timestamp=ts, monitor=monitor.name,
                    verdict=verdict,
                )

    # ------------------------------------------------------------------
    # Worker management
    # ------------------------------------------------------------------

    def kill_worker(self, shard: int) -> None:
        """Test hook: crash one shard worker; the next flush rebuilds it
        (baseline payload + deterministic tail replay)."""
        if not self._sealed:
            raise RuleError("no workers before the first flush")
        self.runtime.kill_worker(shard)

    @property
    def worker_rebuilds(self) -> int:
        return 0 if self.runtime is None else self.runtime.rebuilds

    def chain_stats(self) -> list[dict]:
        """Per-shard compiled-chain ``builds``/``patches`` counters from
        the resident workers.  With the compiled backend pinned, admin
        ops on a sealed rule base patch each affected shard's chain in
        place — ``patches`` moves while ``builds`` stays at one."""
        return [] if self.runtime is None else self.runtime.chain_stats()

    def shard_of(self, name: str) -> int:
        """Which shard evaluates ``name`` (seals the rule base first if
        needed so the layout is final)."""
        if not self._sealed:
            if not self._rules:
                raise RuleError("no trigger rules registered")
            self._seal()
        return self._partition.shard_of(name)

    # ------------------------------------------------------------------
    # Checkpoint serialization (crash recovery)
    # ------------------------------------------------------------------

    def to_state(self) -> dict:
        if self._monitors:
            raise RecoveryError(
                "future-obligation monitors are not checkpointable"
            )
        if self._batch or self._queue:
            raise RecoveryError(
                "cannot checkpoint with batched states pending; flush() first"
            )
        if self._rules and not self._sealed:
            self._seal()
        return {
            "format": _SHARDED_FORMAT,
            "shards": self.shards,
            "states_seen": self.states_seen,
            "executed": self.executed.to_state(),
            "firings": [
                [
                    f.rule,
                    self._encode_pairs(f.bindings),
                    f.state_index,
                    f.timestamp,
                    f.shadow,
                ]
                for f in self._firings
            ],
            "rules": {
                name: {
                    "stats": [
                        reg.stats.evaluations,
                        reg.stats.skips,
                        reg.stats.firings,
                    ],
                    # Raw-text fingerprint (the same text form the worker
                    # protocol ships) + lifecycle facts for the
                    # drift-tolerant restore path.
                    "formula": str(reg.rule.condition),
                    "birth": reg.birth,
                    "shadow": reg.rule.shadow,
                }
                for name, reg in self._rules.items()
            },
            "ics": {
                name: {
                    "evaluator": reg.evaluator.to_state(),
                    "stats": [
                        reg.stats.evaluations,
                        reg.stats.skips,
                        reg.stats.firings,
                    ],
                    "formula": str(reg.rule.condition),
                }
                for name, reg in self._ics.items()
            },
            "pending": [
                [
                    rule.name,
                    self._encode_pairs(sorted(binding.items())),
                    state.index,
                    state.timestamp,
                ]
                for rule, binding, state in self._pending_actions
            ],
            "action_failures": dict(self._action_failures),
            "quarantined": sorted(self._quarantined),
            "assignment": (
                dict(self._partition.assignment) if self._sealed else None
            ),
            #: Recorded verbatim: with hot adds and removals the layout
            #: is history-dependent and cannot be recomputed on restore.
            "rule_index": (
                dict(self._rule_index) if self._sealed else None
            ),
            #: Fresh worker init payloads — each one carries the shard's
            #: resident database items, plan state, executed store,
            #: rising-edge memory, and last applied seq.
            "workers": (
                self.runtime.snapshot_all() if self._sealed else None
            ),
        }

    def from_state(self, payload: dict, strict: bool = True) -> dict:
        """Restore a checkpoint taken by :meth:`to_state`.

        Same contract as the serial manager's
        :meth:`~repro.rules.manager.RuleManager.from_state`: with
        ``strict=False`` a drifted rule set is tolerated — surviving
        rules get their worker-resident state back, dropped (or
        redefined) rules are admin-removed from the restored workers,
        and freshly registered rules are placed and shipped live.
        Returns ``{"added", "dropped", "changed"}`` name lists."""
        fmt = payload.get("format")
        if fmt not in (_SHARDED_FORMAT_V1, _SHARDED_FORMAT):
            raise RecoveryError(
                f"unsupported sharded-manager state format "
                f"{payload.get('format')!r} — was this checkpoint taken "
                f"by the serial RuleManager?"
            )
        if payload["shards"] != self.shards:
            raise RecoveryError(
                f"checkpoint used {payload['shards']} shards; this "
                f"manager has {self.shards}"
            )
        if self._monitors:
            raise RecoveryError(
                "future-obligation monitors are not checkpointable"
            )
        if self._sealed:
            raise RecoveryError(
                "cannot restore into a manager whose runtime already started"
            )
        ck_rules = payload["rules"]
        ck_ics = payload["ics"]
        added = sorted(
            (set(self._rules) - set(ck_rules))
            | (set(self._ics) - set(ck_ics))
        )
        dropped = sorted(
            (set(ck_rules) - set(self._rules))
            | (set(ck_ics) - set(self._ics))
        )
        changed = []
        if fmt == _SHARDED_FORMAT:
            for name in set(ck_rules) & set(self._rules):
                fp = str(self._rules[name].rule.condition)
                if ck_rules[name]["formula"] != fp:
                    changed.append(name)
            for name in set(ck_ics) & set(self._ics):
                fp = str(self._ics[name].rule.condition)
                if ck_ics[name]["formula"] != fp:
                    changed.append(name)
        changed = sorted(changed)
        if strict:
            if set(ck_rules) != set(self._rules):
                raise RecoveryError(
                    "checkpointed trigger set "
                    f"{sorted(ck_rules)} != registered "
                    f"{sorted(self._rules)}"
                )
            if set(ck_ics) != set(self._ics):
                raise RecoveryError(
                    "checkpointed integrity-constraint set "
                    f"{sorted(ck_ics)} != registered "
                    f"{sorted(self._ics)}"
                )
            if changed:
                raise RecoveryError(
                    f"rule {changed[0]!r} condition differs from the "
                    "checkpoint"
                )
        elif fmt == _SHARDED_FORMAT_V1 and (added or dropped or changed):
            raise RecoveryError(
                "sharded-1 checkpoints record no condition fingerprints "
                "and cannot be restored across rule-set drift "
                f"(added={added}, dropped={dropped})"
            )
        changed_set = set(changed)
        self.states_seen = payload["states_seen"]
        self.executed.from_state(payload["executed"])
        self._firings = [
            FiringRecord(
                rule,
                self._decode_pairs(bindings),
                index,
                ts,
                bool(rest[0]) if rest else False,
            )
            for rule, bindings, index, ts, *rest in payload["firings"]
        ]
        for name, entry in ck_rules.items():
            reg = self._rules.get(name)
            if reg is None or name in changed_set:
                continue
            ev, sk, fi = entry["stats"]
            reg.stats.evaluations, reg.stats.skips, reg.stats.firings = ev, sk, fi
            if fmt == _SHARDED_FORMAT:
                reg.birth = entry.get("birth", 0)
                # The checkpointed shadow flag wins over the
                # re-registration's (mirrors the serial manager).
                reg.rule.shadow = bool(entry.get("shadow", False))
                if reg.rule.shadow and reg.m_shadow_firings is None:
                    reg.m_shadow_firings = self.metrics.counter(
                        "shadow_firings_total", rule=name
                    )
        for name, entry in ck_ics.items():
            reg = self._ics.get(name)
            if reg is None or name in changed_set:
                continue
            reg.evaluator.from_state(entry["evaluator"])
            ev, sk, fi = entry["stats"]
            reg.stats.evaluations, reg.stats.skips, reg.stats.firings = ev, sk, fi
        self._pending_actions = []
        for name, binding, index, ts in payload["pending"]:
            if name not in self._rules:
                if strict:
                    raise RecoveryError(
                        f"pending action for unknown rule {name!r}"
                    )
                continue  # the rule was dropped; its queued actions go too
            stub = SystemState(self.engine.db.state, (), ts, index=index)
            self._pending_actions.append(
                (self._rules[name].rule, dict(self._decode_pairs(binding)), stub)
            )
        failures = dict(payload["action_failures"])
        quarantined = set(payload["quarantined"])
        if not strict:
            known = set(self._rules) | set(self._ics)
            failures = {k: v for k, v in failures.items() if k in known}
            quarantined &= known
        self._action_failures = failures
        self._quarantined = quarantined
        if payload["workers"] is not None:
            self._seal_from_checkpoint(payload, changed_set)
        if self._obs_on:
            self._m_pending.set(len(self._pending_actions))
            self._m_quarantined.set(len(self._quarantined))
            self._m_shadow.set(len(self.shadow_rules()))
        return {"added": added, "dropped": dropped, "changed": changed}

    def _seal_from_checkpoint(self, payload: dict, changed_set: set) -> None:
        """Bring the runtime up from checkpointed worker payloads.

        ``sharded-2`` payloads carry the assignment and rule-index maps
        verbatim (a layout shaped by hot adds/removals is not
        recomputable); ``sharded-1`` payloads are fingerprint-checked
        against a recomputed partition, as before.  Surviving rules'
        conditions are verified against the worker specs; under drift
        the restored workers are then reconciled in place — dropped or
        redefined rules admin-removed, new registrations placed and
        admin-added."""
        workers = payload["workers"]
        if payload["format"] == _SHARDED_FORMAT:
            assignment = dict(payload["assignment"])
            rule_index = {
                name: int(i) for name, i in payload["rule_index"].items()
            }
        else:
            partition = self._compute_partition()
            if dict(partition.assignment) != payload["assignment"]:
                raise RecoveryError(
                    "shard assignment fingerprint mismatch: the rule base "
                    "(names, conditions, write-sets, or couplings) changed "
                    "since the checkpoint\n"
                    f"  checkpoint: {payload['assignment']}\n"
                    f"  recomputed: {dict(partition.assignment)}"
                )
            assignment = dict(partition.assignment)
            rule_index = {n: i for i, n in enumerate(self._rules)}
        for worker_payload in workers:
            for spec in worker_payload["rules"]:
                reg = self._rules.get(spec["name"])
                if reg is None or spec["name"] in changed_set:
                    continue  # reconciled away below
                current = str(reg.rule.condition)
                if spec["formula"] != current:
                    raise RecoveryError(
                        f"rule {spec['name']!r} condition differs from "
                        f"the checkpoint:\n"
                        f"  checkpoint: {spec['formula']}\n"
                        f"  registered: {current}"
                    )
        self._rule_index = rule_index
        # ``assignment`` stays aliased into the partition on purpose:
        # the reconciliation loop below mutates it through placement.
        self._partition = RulePartition(
            shards=self.shards,
            assignment=assignment,
            groups=tuple((n,) for n in assignment),
        )
        runtime = self._make_runtime()
        # Start with the *checkpointed* spec lists — the workers hold the
        # checkpointed rule base until the admin ops below land.
        runtime.start(workers, [list(wp["rules"]) for wp in workers])
        self.runtime = runtime
        self._shard_prev = [
            DatabaseState(
                {
                    name: _decode_item(item)
                    for name, item in wp["items"].items()
                }
            )
            for wp in workers
        ]
        self._shard_seq = [wp["seq"] for wp in workers]
        self._sealed = True
        ops: dict[int, list[dict]] = {}
        for name in list(payload["rules"]):
            if name in self._rules and name not in changed_set:
                continue
            shard = assignment.pop(name)
            rule_index.pop(name)
            ops.setdefault(shard, []).append({"op": "remove", "name": name})
        for name in self._rules:
            if name in assignment:
                continue
            reg = self._rules[name]
            self._check_round_trip(name, reg.rule.condition)
            shard = self._place_rule(
                name, reg.rule.condition, self._rule_writes[name]
            )
            assignment[name] = shard
            rule_index[name] = max(rule_index.values(), default=-1) + 1
            ops.setdefault(shard, []).append(
                {"op": "add", "spec": self._rule_spec(name)}
            )
        rules_payloads = self._build_rules_payloads()
        self._gates = self._compute_gates(rules_payloads)
        for shard in sorted(ops):
            runtime.admin(shard, ops[shard], rules_payloads[shard])
        if self._obs_on:
            self._m_shards.set(self.shards)
            for shard in range(self.shards):
                self.metrics.gauge(
                    "shard_rules", shard=str(shard)
                ).set(len(rules_payloads[shard]))

    # ------------------------------------------------------------------
    # Introspection / teardown
    # ------------------------------------------------------------------

    def total_state_size(self) -> int:
        """Retained evaluator state: IC evaluators in-process, plus every
        shard worker's resident plan + executed store (one round-trip per
        shard on the process runtime — call sparingly)."""
        total = sum(
            reg.evaluator.state_size() for reg in self._ics.values()
        )
        if self._sealed:
            sizes = self.runtime.state_sizes()
            total += sum(sizes)
            if self._obs_on:
                for shard, size in enumerate(sizes):
                    self.metrics.gauge(
                        "shard_state_size", shard=str(shard)
                    ).set(size)
        if self._obs_on:
            self._m_state_size.set(total)
        return total

    def detach(self) -> None:
        super().detach()
        if self.runtime is not None:
            self.runtime.close()
