"""The resident shard worker: one shard's rules, plan, and state.

A worker is initialised once with its shard's full context — rule
definitions (conditions as PTL text, re-parsed locally), the query
catalog, the current database items, and the executed-store contents —
and thereafter receives only *delta* step records (the WAL record shape:
seq, ts, events, changed items, write-set).  It keeps the shard's
:class:`~repro.ptl.plan.SharedPlan` and database state resident across
steps, so the per-state payload is proportional to the write-set, not the
database.

Evaluation mirrors the serial :class:`~repro.rules.manager.RuleManager`
exactly (the conformance suite holds both to the same firing sequences):

* the shard plan steps on every dispatched state (shared temporal state
  must see every state it is dispatched — the parent only withholds
  states from a shard when the whole shard is stateless and event-gated);
* per rule, in priority order, relevance filtering skips reading the
  result, and :func:`~repro.rules.manager.apply_fire_mode` applies the
  rising-edge memory;
* firings of rules with ``record_executions`` are recorded in the
  worker-local executed store *after* all rules evaluated the state and
  before the next state is evaluated — matching the serial manager, where
  state N's actions run before state N+1 is evaluated, so co-sharded
  ``executed(r, ...)`` conditions see their antecedents.  (Deliberate
  divergence: detached ``T_C_A`` firings are recorded here at firing
  time, whereas the parent's authoritative store records them when the
  application drains the queue — see ``docs/PARALLEL.md``.)

The module-level ``_init_worker``/``_step_worker``/``_snapshot_worker``/
``_admin_worker`` functions wrap a process-global worker instance for use with a
``ProcessPoolExecutor(max_workers=1)`` per shard; ``_crash_worker`` is
the fault-injection hook the crash-recovery tests use.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.errors import RecoveryError
from repro.events.model import Event
from repro.history.state import SystemState
from repro.ptl import constraints as cs
from repro.ptl.compiled import ptl_compile_enabled, set_ptl_compile
from repro.ptl.context import EvalContext, ExecutedStore
from repro.ptl.parser import parse_formula
from repro.ptl.plan import SharedPlan
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.query.subst import QueryRegistry
from repro.rules.manager import apply_fire_mode
from repro.rules.rule import CouplingMode, FireMode
from repro.storage.persist import _decode_item, _encode_item
from repro.storage.snapshot import DatabaseState

#: Protocol version stamped into init/snapshot payloads.
WORKER_FORMAT = 1


# -- payload codecs ---------------------------------------------------------


def encode_domains(domains) -> dict:
    """Encode an ``EvalContext.domains`` mapping for shipment: query
    specs go as re-parsable text, fixed value lists by value."""
    out = {}
    for var, spec in (domains or {}).items():
        if isinstance(spec, Query):
            out[var] = {"kind": "query", "text": str(spec)}
        else:
            out[var] = {
                "kind": "values",
                "values": [cs.encode_value(v) for v in spec],
            }
    return out


def decode_domains(payload: dict) -> dict:
    out = {}
    for var, spec in (payload or {}).items():
        if spec["kind"] == "query":
            out[var] = parse_query(spec["text"])
        else:
            out[var] = [cs.decode_value(v) for v in spec["values"]]
    return out


def encode_bindings(bindings) -> list:
    """Firing bindings as sorted key/value pair lists (the
    :class:`~repro.rules.rule.FiringRecord` binding shape)."""
    return [
        [[k, cs.encode_value(v)] for k, v in sorted(b.items())]
        for b in bindings
    ]


def decode_bindings(payload: list) -> list[dict]:
    return [
        {k: cs.decode_value(v) for k, v in pairs} for pairs in payload
    ]


def _encode_prev(prev: frozenset) -> list:
    return [
        [[k, cs.encode_value(v)] for k, v in pairs] for pairs in sorted(prev)
    ]


def _decode_prev(payload: list) -> frozenset:
    return frozenset(
        tuple((k, cs.decode_value(v)) for k, v in pairs) for pairs in payload
    )


class _WorkerRule:
    """One rule as the worker sees it: evaluation-relevant fields only
    (actions stay with the parent; workers never execute side effects)."""

    __slots__ = (
        "index",
        "name",
        "params",
        "coupling",
        "fire_mode",
        "relevant_events",
        "record_executions",
        "priority",
        "shadow",
        "evaluator",
        "prev_bindings",
    )

    def __init__(self, spec: dict):
        self.index = spec["index"]
        self.name = spec["name"]
        self.params = tuple(spec["params"])
        self.coupling = CouplingMode(spec["coupling"])
        self.fire_mode = FireMode(spec["fire_mode"])
        self.relevant_events = (
            None
            if spec["relevant_events"] is None
            else frozenset(spec["relevant_events"])
        )
        self.record_executions = spec["record_executions"]
        self.priority = spec["priority"]
        self.shadow = bool(spec.get("shadow", False))
        self.evaluator = None
        self.prev_bindings: frozenset = _decode_prev(spec.get("prev", []))


class ShardWorker:
    """One shard's resident evaluation state (usable in-process too —
    :class:`~repro.parallel.runtime.ThreadShardRuntime` holds these
    directly)."""

    def __init__(self, payload: dict):
        if payload.get("format") != WORKER_FORMAT:
            raise RecoveryError(
                f"unsupported shard worker payload format "
                f"{payload.get('format')!r}"
            )
        self.shard: int = payload["shard"]
        self.retention: Optional[int] = payload.get("retention")
        self.seq: Optional[int] = payload.get("seq")
        # The parent pins the recurrence backend at seal time so every
        # shard process evaluates in the same mode it does (the flag is
        # process-global; older payloads without the key leave it alone).
        ptl_compile = payload.get("ptl_compile")
        if ptl_compile is not None:
            set_ptl_compile(bool(ptl_compile))
        self.db = DatabaseState(
            {
                name: _decode_item(item)
                for name, item in payload["items"].items()
            }
        )
        self.queries = QueryRegistry()
        for name, qdef in sorted(payload["queries"].items()):
            self.queries.define_text(name, tuple(qdef["params"]), qdef["text"])
        self._scalar_items = {
            name
            for name in self.db.item_names()
            if not self.db.has_relation(name)
        }
        self.executed = ExecutedStore()
        self.executed.from_state(payload["executed"])
        self.plan = SharedPlan(EvalContext(executed=self.executed))
        self.rules: list[_WorkerRule] = []
        for spec in payload["rules"]:
            self._install_rule(spec)
        self._reorder()
        plan_state = payload.get("plan")
        if plan_state is not None:
            self.plan.from_state(plan_state)

    def _install_rule(self, spec: dict) -> _WorkerRule:
        rule = _WorkerRule(spec)
        formula = parse_formula(
            spec["formula"], self.queries, self._scalar_items
        )
        ctx = EvalContext(
            executed=self.executed,
            domains=decode_domains(spec.get("domains")),
        )
        rule.evaluator = self.plan.add_rule(rule.name, formula, ctx)
        self.rules.append(rule)
        return rule

    def _reorder(self) -> None:
        #: Priority order (higher first, ties by registration index) —
        #: the serial manager's ``_ordered_rules``.
        self._ordered = sorted(self.rules, key=lambda r: -r.priority)

    # -- rule-base administration (hot add/remove/shadow flip) --------------

    def admin(self, ops: list[dict]) -> None:
        """Apply rule-base changes to the live shard.  The runtime
        refreshes this shard's rebuild baseline immediately afterwards —
        the crash-replay tail holds only step records, so a baseline
        predating the change would resurrect the old rule base."""
        for op in ops:
            kind = op["op"]
            if kind == "add":
                self._install_rule(op["spec"])
            elif kind == "remove":
                name = op["name"]
                self.plan.remove_rule(name)
                self.rules = [r for r in self.rules if r.name != name]
            elif kind == "set_shadow":
                for rule in self.rules:
                    if rule.name == op["name"]:
                        rule.shadow = bool(op["shadow"])
                        break
                else:
                    raise RecoveryError(
                        f"shard {self.shard}: set_shadow for unknown "
                        f"rule {op['name']!r}"
                    )
            else:
                raise RecoveryError(f"unknown shard admin op {kind!r}")
        self._reorder()

    # -- stepping -----------------------------------------------------------

    def step(self, records: list[dict]) -> list[dict]:
        """Apply a batch of WAL-shaped step records; returns, per record,
        the fired rules and their bindings (encoded)."""
        out = []
        for record in records:
            out.append(self._step_one(record))
        if self.retention is not None and records:
            horizon = records[-1]["ts"] - self.retention
            self.executed.discard_before(horizon)
        return out

    def _step_one(self, record: dict) -> dict:
        seq = record["seq"]
        if self.seq is not None and seq <= self.seq:
            raise RecoveryError(
                f"shard {self.shard}: step record {seq} is not past the "
                f"last applied record {self.seq}"
            )
        changes = {
            name: _decode_item(item)
            for name, item in record["changes"].items()
        }
        if changes:
            self.db = self.db.with_updates(changes)
        events = [Event(name, tuple(params)) for name, params in record["events"]]
        delta = record["delta"]
        state = SystemState(
            self.db,
            events,
            record["ts"],
            index=seq,
            delta=None if delta is None else frozenset(delta),
        )
        self.plan.step(state)
        names = state.event_names()
        fired: list[list] = []
        to_record: list[tuple[_WorkerRule, dict]] = []
        for rule in self._ordered:
            if rule.relevant_events is not None and not (
                rule.relevant_events & names
            ):
                continue
            result = self.plan.result_of(rule.name)
            bindings, rule.prev_bindings = apply_fire_mode(
                rule.fire_mode, result, rule.prev_bindings
            )
            if bindings:
                fired.append([rule.index, encode_bindings(bindings)])
            # Shadow rules report firings to the parent but never touch
            # the executed store — mirroring the serial manager, where a
            # shadow firing suppresses both the action and the record.
            if rule.record_executions and not rule.shadow:
                for binding in bindings:
                    to_record.append((rule, binding))
        # Record *after* the full rule pass, before the next state: the
        # serial manager executes (and records) a state's T-CA actions
        # once every rule has evaluated that state.
        for rule, binding in to_record:
            params = tuple(binding.get(p) for p in rule.params)
            self.executed.record(rule.name, params, state.timestamp)
        self.seq = seq
        return {"seq": seq, "fired": fired}

    # -- snapshot (crash rebuild / checkpoints) -----------------------------

    def snapshot(self, rules_payload: list[dict]) -> dict:
        """A fresh init payload capturing the worker's resident state.

        ``rules_payload`` is the parent's canonical rule spec list for
        this shard (the worker does not retain formula text or domains in
        shippable form); the per-rule rising-edge memory is re-stamped
        from the live evaluators."""
        by_name = {r.name: r for r in self.rules}
        rules = []
        for spec in rules_payload:
            rule = by_name[spec["name"]]
            spec = dict(spec)
            spec["prev"] = _encode_prev(rule.prev_bindings)
            rules.append(spec)
        return {
            "format": WORKER_FORMAT,
            "shard": self.shard,
            "retention": self.retention,
            "seq": self.seq,
            "items": {
                name: _encode_item(self.db.raw_item(name))
                for name in self.db.item_names()
            },
            "queries": {
                name: {
                    "params": list(self.queries.get(name).params),
                    "text": str(self.queries.get(name).body),
                }
                for name in self.queries.names()
            },
            "executed": self.executed.to_state(),
            "rules": rules,
            "plan": self.plan.to_state() if self.rules else None,
            "ptl_compile": ptl_compile_enabled(),
        }

    def state_size(self) -> int:
        return self.plan.state_size() + len(self.executed)

    def chain_stats(self) -> dict:
        """Compiled-chain counters for this shard's plan: admin ops on a
        sealed shard must *patch* the resident chain (``patches`` moves,
        ``builds`` stays put), not rebuild it from scratch."""
        return {
            "builds": self.plan.chain_builds,
            "patches": self.plan.chain_patches,
        }


# -- process-pool entry points ----------------------------------------------
#
# One worker process hosts exactly one shard (the runtime builds one
# single-worker pool per shard), so a process-global instance is safe and
# is what keeps the shard state resident between submissions.

_WORKER: Optional[ShardWorker] = None


def _init_worker(payload: dict) -> None:
    global _WORKER
    _WORKER = ShardWorker(payload)


def _step_worker(records: list[dict]) -> list[dict]:
    if _WORKER is None:
        raise RecoveryError("shard worker used before initialisation")
    return _WORKER.step(records)


def _snapshot_worker(rules_payload: list[dict]) -> dict:
    if _WORKER is None:
        raise RecoveryError("shard worker used before initialisation")
    return _WORKER.snapshot(rules_payload)


def _admin_worker(ops: list[dict]) -> None:
    if _WORKER is None:
        raise RecoveryError("shard worker used before initialisation")
    _WORKER.admin(ops)


def _state_size_worker() -> int:
    return 0 if _WORKER is None else _WORKER.state_size()


def _chain_stats_worker() -> dict:
    if _WORKER is None:
        return {"builds": 0, "patches": 0}
    return _WORKER.chain_stats()


def _crash_worker() -> None:
    """Kill the hosting process without cleanup — the crash-recovery
    tests' stand-in for a worker segfault or OOM kill."""
    os._exit(42)
