"""Sharded parallel rule evaluation.

The rule base is partitioned into K *shards* (dependency-aware — rules
coupled through the ``executed`` relation or through overlapping declared
write-sets land in the same shard), one
:class:`~repro.ptl.plan.SharedPlan` is compiled per shard, and every
committed system state is dispatched to the shards concurrently.  See
``docs/PARALLEL.md`` for the shard model and the determinism /
serializability argument.

Public surface:

* :class:`ShardedRuleManager` — drop-in
  :class:`~repro.rules.manager.RuleManager` evaluating trigger
  conditions across shard workers.
* :func:`partition_rules` / :class:`RulePartition` — the deterministic
  dependency-aware partitioner.
* :class:`ProcessShardRuntime` / :class:`ThreadShardRuntime` — the
  execution backends (persistent worker processes holding shard state
  resident, and the in-process fallback for spawn-only platforms).
"""

from repro.parallel.manager import ShardedRuleManager
from repro.parallel.partition import (
    RulePartition,
    RuleProfile,
    partition_rules,
    rule_profile,
)
from repro.parallel.runtime import (
    ProcessShardRuntime,
    ShardRuntime,
    ThreadShardRuntime,
    make_runtime,
)

__all__ = [
    "ShardedRuleManager",
    "RulePartition",
    "RuleProfile",
    "partition_rules",
    "rule_profile",
    "ProcessShardRuntime",
    "ShardRuntime",
    "ThreadShardRuntime",
    "make_runtime",
]
