"""Relational data model: value types, schemas, rows, relations."""

from repro.datamodel.relation import Relation
from repro.datamodel.schema import Attribute, Schema
from repro.datamodel.tuples import Row
from repro.datamodel.types import ValueType, check_value, infer_type

INT = ValueType.INT
FLOAT = ValueType.FLOAT
STRING = ValueType.STRING
BOOL = ValueType.BOOL
TIME = ValueType.TIME

__all__ = [
    "Attribute",
    "Schema",
    "Row",
    "Relation",
    "ValueType",
    "check_value",
    "infer_type",
    "INT",
    "FLOAT",
    "STRING",
    "BOOL",
    "TIME",
]
