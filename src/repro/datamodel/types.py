"""Value domains for the relational data model.

The paper's model (Section 2) maps each *database item* to "a value from the
appropriate domain".  We support the domains needed by the paper's examples
and by PTL's arithmetic: integers, floats, strings, booleans, and TIME
(an alias of INT holding clock timestamps — the paper assumes a ``time``
data item whose values strictly increase).
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeMismatchError


class ValueType(enum.Enum):
    """Attribute domains supported by the engine."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"
    TIME = "time"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ValueType.{self.name}"


#: Python types accepted for each domain (before coercion).
_ACCEPTED: dict[ValueType, tuple[type, ...]] = {
    ValueType.INT: (int,),
    ValueType.FLOAT: (int, float),
    ValueType.STRING: (str,),
    ValueType.BOOL: (bool,),
    ValueType.TIME: (int,),
}

#: Domains whose values can be compared with < <= > >=.
ORDERED_TYPES = frozenset(
    {ValueType.INT, ValueType.FLOAT, ValueType.STRING, ValueType.TIME}
)

#: Domains usable in arithmetic.
NUMERIC_TYPES = frozenset({ValueType.INT, ValueType.FLOAT, ValueType.TIME})


def check_value(value: Any, vtype: ValueType) -> Any:
    """Validate (and coerce) ``value`` into domain ``vtype``.

    Returns the possibly-coerced value.  Raises
    :class:`~repro.errors.TypeMismatchError` if the value does not belong to
    the domain.  ``bool`` is deliberately *not* accepted for INT/FLOAT even
    though ``bool`` subclasses ``int`` in Python.
    """
    if vtype is ValueType.BOOL:
        if isinstance(value, bool):
            return value
        raise TypeMismatchError(f"expected BOOL, got {value!r}")
    if isinstance(value, bool):
        raise TypeMismatchError(f"expected {vtype.value}, got boolean {value!r}")
    accepted = _ACCEPTED[vtype]
    if not isinstance(value, accepted):
        raise TypeMismatchError(
            f"expected {vtype.value}, got {type(value).__name__} {value!r}"
        )
    if vtype is ValueType.FLOAT:
        return float(value)
    return value


def infer_type(value: Any) -> ValueType:
    """Infer the tightest domain for a Python value."""
    if isinstance(value, bool):
        return ValueType.BOOL
    if isinstance(value, int):
        return ValueType.INT
    if isinstance(value, float):
        return ValueType.FLOAT
    if isinstance(value, str):
        return ValueType.STRING
    raise TypeMismatchError(f"no domain for {type(value).__name__} {value!r}")


def compatible(a: ValueType, b: ValueType) -> bool:
    """Whether values of domains ``a`` and ``b`` may be compared/combined."""
    if a == b:
        return True
    return a in NUMERIC_TYPES and b in NUMERIC_TYPES


def merge_types(a: ValueType, b: ValueType) -> ValueType:
    """Result domain when combining values of domains ``a`` and ``b``."""
    if a == b:
        return a
    if a in NUMERIC_TYPES and b in NUMERIC_TYPES:
        if ValueType.FLOAT in (a, b):
            return ValueType.FLOAT
        return ValueType.INT
    raise TypeMismatchError(f"incompatible domains {a.value} and {b.value}")
