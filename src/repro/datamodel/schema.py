"""Schemas: ordered lists of typed, named attributes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.datamodel.types import ValueType, check_value
from repro.errors import SchemaError, UnknownAttributeError


@dataclass(frozen=True)
class Attribute:
    """A named, typed column."""

    name: str
    vtype: ValueType

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid attribute name {self.name!r}")

    def renamed(self, name: str) -> "Attribute":
        return Attribute(name, self.vtype)

    def __str__(self) -> str:
        return f"{self.name}:{self.vtype.value}"


class Schema:
    """An ordered collection of attributes with unique names.

    Schemas are immutable; operations produce new schemas.
    """

    __slots__ = ("_attrs", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        index: dict[str, int] = {}
        for i, attr in enumerate(attrs):
            if not isinstance(attr, Attribute):
                raise SchemaError(f"not an Attribute: {attr!r}")
            if attr.name in index:
                raise SchemaError(f"duplicate attribute name {attr.name!r}")
            index[attr.name] = i
        self._attrs = attrs
        self._index = index

    # -- constructors ------------------------------------------------------

    @classmethod
    def of(cls, **columns: ValueType) -> "Schema":
        """Build a schema from keyword arguments: ``Schema.of(a=INT, b=STRING)``."""
        return cls(Attribute(name, vtype) for name, vtype in columns.items())

    # -- basic protocol ----------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attrs

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attrs)

    @property
    def types(self) -> tuple[ValueType, ...]:
        return tuple(a.vtype for a in self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attrs)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, key) -> Attribute:
        if isinstance(key, str):
            try:
                return self._attrs[self._index[key]]
            except KeyError:
                raise UnknownAttributeError(f"no attribute {key!r}") from None
        return self._attrs[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attrs == other._attrs

    def __hash__(self) -> int:
        return hash(self._attrs)

    def __repr__(self) -> str:
        return "Schema(" + ", ".join(str(a) for a in self._attrs) + ")"

    # -- lookups -----------------------------------------------------------

    def position(self, name: str) -> int:
        """Index of attribute ``name``; raises if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(f"no attribute {name!r}") from None

    def type_of(self, name: str) -> ValueType:
        return self[name].vtype

    # -- derivations -------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Sub-schema with the given attributes, in the given order."""
        return Schema(self[n] for n in names)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Rename attributes per ``mapping`` (old name -> new name)."""
        for old in mapping:
            if old not in self._index:
                raise UnknownAttributeError(f"no attribute {old!r}")
        return Schema(
            a.renamed(mapping.get(a.name, a.name)) for a in self._attrs
        )

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a cross product; names must not collide."""
        return Schema(self._attrs + other._attrs)

    def extend(self, *attributes: Attribute) -> "Schema":
        return Schema(self._attrs + tuple(attributes))

    def prefixed(self, prefix: str) -> "Schema":
        """All attributes renamed to ``prefix.name`` (used by joins)."""
        return Schema(a.renamed(f"{prefix}.{a.name}") for a in self._attrs)

    # -- validation --------------------------------------------------------

    def check_row_values(self, values: Sequence) -> tuple:
        """Validate a sequence of values against this schema; returns the
        coerced tuple."""
        if len(values) != len(self._attrs):
            raise SchemaError(
                f"arity mismatch: schema has {len(self._attrs)} attributes, "
                f"row has {len(values)} values"
            )
        return tuple(
            check_value(v, a.vtype) for v, a in zip(values, self._attrs)
        )
