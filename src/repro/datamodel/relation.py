"""Relations: immutable sets of rows over a schema, with algebra helpers.

Relations use *set* semantics (the paper's examples are QUEL/relational).
All operations return new relations; the engine layers copy-on-write
versioning on top of this immutability (see ``repro.storage.snapshot``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.datamodel.schema import Attribute, Schema
from repro.datamodel.tuples import Row
from repro.errors import NotScalarError, SchemaError


class Relation:
    """An immutable set of :class:`Row` sharing one :class:`Schema`.

    ``_index_cache`` memoizes hash indexes (see
    :mod:`repro.storage.index`) — safe because the row set never changes.
    """

    __slots__ = ("_schema", "_rows", "_index_cache", "_sorted_cache")

    def __init__(self, schema: Schema, rows: Iterable[Row] = ()):
        self._index_cache = None
        self._sorted_cache = None
        self._schema = schema
        frozen: frozenset[Row] = (
            rows if isinstance(rows, frozenset) else frozenset(rows)
        )
        for row in frozen:
            if len(row) != len(schema):
                raise SchemaError(
                    f"row arity {len(row)} != schema arity {len(schema)}"
                )
        self._rows = frozen

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_values(
        cls, schema: Schema, value_rows: Iterable[Sequence[Any]]
    ) -> "Relation":
        return cls(schema, (Row(schema, vals) for vals in value_rows))

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        return cls(schema, ())

    @classmethod
    def singleton_scalar(cls, value: Any, name: str = "value") -> "Relation":
        """A 1x1 relation holding one scalar (query results that are scalars)."""
        from repro.datamodel.types import infer_type

        schema = Schema([Attribute(name, infer_type(value))])
        return cls(schema, (Row(schema, [value]),))

    # -- basic protocol ----------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def rows(self) -> frozenset[Row]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row) -> bool:
        if isinstance(row, (tuple, list)):
            return any(r.values == tuple(row) for r in self._rows)
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema.types == other._schema.types and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._schema.types, self._rows))

    def __repr__(self) -> str:
        return f"Relation({self._schema!r}, {len(self._rows)} rows)"

    def is_empty(self) -> bool:
        return not self._rows

    def sorted_rows(self) -> list[Row]:
        """Rows in a deterministic order (for printing and testing).

        Memoized on the (immutable) relation — callers must not mutate
        the returned list.
        """
        cached = self._sorted_cache
        if cached is None:
            cached = sorted(
                self._rows, key=lambda r: tuple(map(_sort_key, r.values))
            )
            self._sorted_cache = cached
        return cached

    # -- scalar view -------------------------------------------------------

    def scalar(self) -> Any:
        """The single value of a 1x1 relation.

        The paper allows a query to retrieve "a scalar or a relation";
        scalar query results are represented as 1x1 relations and unwrapped
        here.
        """
        if len(self._rows) != 1 or len(self._schema) != 1:
            raise NotScalarError(
                f"relation is {len(self._rows)}x{len(self._schema)}, not 1x1"
            )
        (row,) = self._rows
        return row[0]

    # -- algebra -----------------------------------------------------------

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        return Relation(self._schema, (r for r in self._rows if predicate(r)))

    def project(self, names: Sequence[str]) -> "Relation":
        sub = self._schema.project(names)
        return Relation(sub, (r.project(names) for r in self._rows))

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        new_schema = self._schema.rename(dict(mapping))
        return Relation(new_schema, (r.with_schema(new_schema) for r in self._rows))

    def extend(
        self, attribute: Attribute, fn: Callable[[Row], Any]
    ) -> "Relation":
        """Add a computed column."""
        new_schema = self._schema.extend(attribute)
        return Relation(
            new_schema,
            (Row(new_schema, r.values + (fn(r),)) for r in self._rows),
        )

    def union(self, other: "Relation") -> "Relation":
        self._require_compatible(other)
        return Relation(self._schema, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        self._require_compatible(other)
        return Relation(self._schema, self._rows - other._rows)

    def intersection(self, other: "Relation") -> "Relation":
        self._require_compatible(other)
        return Relation(self._schema, self._rows & other._rows)

    def product(self, other: "Relation") -> "Relation":
        """Cross product; attribute names must not collide."""
        schema = self._schema.concat(other._schema)
        return Relation(
            schema,
            (
                Row(schema, a.values + b.values)
                for a in self._rows
                for b in other._rows
            ),
        )

    def join(
        self, other: "Relation", on: Sequence[tuple[str, str]]
    ) -> "Relation":
        """Equi-join on pairs of (left attribute, right attribute).

        Right-side join attributes are dropped from the result (natural-join
        style); remaining right attributes keep their names and must not
        collide with left names.
        """
        right_join_names = {r for (_, r) in on}
        kept_right = [n for n in other._schema.names if n not in right_join_names]
        schema = self._schema.concat(other._schema.project(kept_right))

        index: dict[tuple, list[Row]] = {}
        right_keys = [r for (_, r) in on]
        for row in other._rows:
            index.setdefault(tuple(row[k] for k in right_keys), []).append(row)

        left_keys = [l for (l, _) in on]
        out = []
        for row in self._rows:
            key = tuple(row[k] for k in left_keys)
            for match in index.get(key, ()):
                extra = tuple(match[n] for n in kept_right)
                out.append(Row(schema, row.values + extra))
        return Relation(schema, out)

    def insert(self, row_values: Sequence[Any]) -> "Relation":
        return Relation(
            self._schema, self._rows | {Row(self._schema, row_values)}
        )

    def delete(self, predicate: Callable[[Row], bool]) -> "Relation":
        return Relation(self._schema, (r for r in self._rows if not predicate(r)))

    def update(
        self,
        predicate: Callable[[Row], bool],
        updater: Callable[[Row], Mapping[str, Any]],
    ) -> "Relation":
        """Rows matching ``predicate`` have columns replaced per ``updater``."""
        out = []
        for row in self._rows:
            if predicate(row):
                changes = updater(row)
                mapping = row.as_dict()
                mapping.update(changes)
                out.append(Row.from_mapping(self._schema, mapping))
            else:
                out.append(row)
        return Relation(self._schema, out)

    # -- helpers -----------------------------------------------------------

    def _require_compatible(self, other: "Relation") -> None:
        if self._schema.types != other._schema.types:
            raise SchemaError(
                f"incompatible schemas {self._schema!r} and {other._schema!r}"
            )


def _sort_key(value: Any):
    """Total order across mixed value types for deterministic output."""
    return (type(value).__name__, value)
