"""Immutable rows bound to a schema."""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.datamodel.schema import Schema
from repro.errors import UnknownAttributeError


class Row:
    """An immutable tuple of values typed by a :class:`Schema`.

    Rows hash and compare by (schema names are *not* part of identity —
    two rows are equal iff their value tuples are equal and arities match),
    which is what relational set semantics needs after renames.
    """

    __slots__ = ("_schema", "_values", "_hash")

    def __init__(self, schema: Schema, values: Sequence[Any]):
        self._schema = schema
        self._values = schema.check_row_values(values)
        self._hash = hash(self._values)

    @classmethod
    def from_mapping(cls, schema: Schema, mapping: Mapping[str, Any]) -> "Row":
        """Build a row from an attribute-name -> value mapping."""
        return cls(schema, [mapping[name] for name in schema.names])

    # -- access ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> tuple:
        return self._values

    def __getitem__(self, key) -> Any:
        if isinstance(key, str):
            return self._values[self._schema.position(key)]
        return self._values[key]

    def get(self, name: str, default: Any = None) -> Any:
        try:
            return self[name]
        except UnknownAttributeError:
            return default

    def as_dict(self) -> dict[str, Any]:
        return dict(zip(self._schema.names, self._values))

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{n}={v!r}" for n, v in zip(self._schema.names, self._values)
        )
        return f"Row({pairs})"

    # -- derivations -------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Row":
        sub = self._schema.project(names)
        return Row(sub, [self[n] for n in names])

    def concat(self, other: "Row") -> "Row":
        return Row(self._schema.concat(other._schema), self._values + other._values)

    def with_schema(self, schema: Schema) -> "Row":
        """Rebind to a compatible schema (same arity), e.g. after a rename."""
        return Row(schema, self._values)
