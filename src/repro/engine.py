"""The active database engine: storage + clock + events + history.

:class:`ActiveDatabase` is the transaction-time system of Section 2.  It
owns the :class:`~repro.storage.database.Database`, the global
:class:`~repro.events.clock.Clock`, the
:class:`~repro.events.bus.EventBus` feeding the temporal component, and
(optionally) the full :class:`~repro.history.history.SystemHistory`.

Lifecycle of a committing transaction::

    txn = adb.begin()                  # system state with transaction_begin
    txn.insert("STOCK", (...,))        # buffered
    txn.commit()                       # candidate state built; integrity
                                       # constraints checked at the
                                       # attempts_to_commit event; on
                                       # success the commit state is
                                       # appended and published

Integrity-constraint checking is pluggable: the rule manager registers a
*commit validator* receiving the candidate system state and returning
violations; any violation turns the commit into an abort (Section 3: an
integrity constraint "is a rule in which the action is abort(X)").
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.errors import (
    ActionError,
    ClockError,
    HistoryError,
    QueueFullError,
    ReproError,
    StorageDegradedError,
    TransactionAborted,
)
from repro.events import model as ev
from repro.events.bus import EventBus
from repro.events.clock import Clock
from repro.history.history import SystemHistory
from repro.history.state import SystemState
from repro.obs.metrics import as_registry
from repro.storage.database import Database
from repro.storage.transactions import Transaction, TransactionManager, TxnStatus

#: A commit validator inspects the candidate commit state and returns
#: human-readable violations (empty sequence = transaction may commit).
CommitValidator = Callable[[SystemState, Transaction], Sequence[str]]


class ActiveDatabase:
    """Transaction-time active database engine."""

    def __init__(
        self,
        start_time: int = 0,
        keep_history: bool = True,
        begin_states: bool = False,
        metrics=None,
        max_queue: int = 1024,
    ):
        """``begin_states=True`` records a system state for every
        ``transaction_begin`` event (the paper's model records a state per
        event occurrence).  The default omits them: most conditions only
        observe commit points and user events, and workloads then control
        commit timestamps directly.

        ``metrics`` (``None``/``True``/a registry) enables engine-level
        counters and event-bus throughput metrics; a
        :class:`~repro.rules.manager.RuleManager` attached to this engine
        inherits the registry by default.

        ``max_queue`` bounds the ingest queue used by :meth:`enqueue` /
        :meth:`drain` (update batching with group commit)."""
        self.db = Database()
        self.begin_states = begin_states
        self.clock = Clock(start_time)
        self.bus = EventBus()
        self.history: Optional[SystemHistory] = (
            SystemHistory() if keep_history else None
        )
        self.txns = TransactionManager()
        self._commit_validators: list[CommitValidator] = []
        self._last_state: Optional[SystemState] = None
        self._state_count = 0
        self.metrics = as_registry(metrics)
        self._obs_on = self.metrics.enabled
        self._m_states = self.metrics.counter("engine_states_total")
        self._m_commits = self.metrics.counter("engine_commits_total")
        self._m_aborts = self.metrics.counter("engine_aborts_total")
        self._m_history_len = self.metrics.gauge("engine_history_len")
        self.bus.attach_metrics(self.metrics)
        # -- ingest batching / group commit --------------------------------
        #: True while a batch() is open: durability consumers amortize
        #: their fsync, rule managers hold trigger processing until the
        #: batch is durable.
        self.in_batch = False
        #: A durability provider (the WAL when attached) offering
        #: begin_group()/end_group() and prepare(); None when nothing
        #: durable is wired.
        self.durability = None
        #: Tiered-history runtime (see :mod:`repro.history.spill`) when
        #: :func:`~repro.history.spill.attach_tiered_history` is wired.
        self.tiered = None
        # -- degraded read-only mode ---------------------------------------
        #: True once a disk stayed unwritable past bounded retries: every
        #: state append (commit, event, tick) is refused with
        #: :class:`~repro.errors.StorageDegradedError` until
        #: :meth:`exit_degraded` verifies the disk recovered.  Reads,
        #: queries, and rule evaluation over committed states continue.
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self._m_degraded = self.metrics.gauge("storage_degraded")
        #: Called (no args) after each batch turns durable.
        self.batch_listeners: list[Callable[[], None]] = []
        self.max_queue = max(1, max_queue)
        self._txn_queue: deque = deque()
        self._m_queue_depth = self.metrics.gauge("batch_queue_depth")
        self._m_batches = self.metrics.counter("batch_commits_total")
        self._m_batch_txns = self.metrics.histogram("batch_txns")

    # -- catalog delegation ---------------------------------------------------

    def create_relation(self, name, schema, rows=()):
        return self.db.create_relation(name, schema, rows)

    def define_query(self, name, params, text):
        return self.db.define_query(name, params, text)

    def declare_item(self, name, initial):
        return self.db.declare_item(name, initial)

    def declare_indexed_item(self, name, default=None):
        return self.db.declare_indexed_item(name, default)

    @property
    def state(self):
        """Current committed database state."""
        return self.db.state

    @property
    def now(self) -> int:
        return self.clock.now

    @property
    def last_state(self) -> Optional[SystemState]:
        """Most recently appended system state (kept even without history)."""
        return self._last_state

    def as_of(self, timestamp: int) -> Optional[SystemState]:
        """The system state as of ``timestamp`` (the latest state at or
        before it) — point-in-time querying over the kept history."""
        if self.history is None:
            raise HistoryError("as_of needs keep_history=True")
        return self.history.as_of(timestamp)

    @property
    def state_count(self) -> int:
        return self._state_count

    # -- temporal component -------------------------------------------------------

    def rule_manager(self, **kwargs):
        """Attach a :class:`~repro.rules.manager.RuleManager` (the paper's
        temporal component) to this engine and return it.  Keyword
        arguments pass through — e.g. ``shared_plan=False`` for one
        independent evaluator per rule instead of the shared
        condition-evaluation plan."""
        from repro.rules.manager import RuleManager

        return RuleManager(self, **kwargs)

    # -- integrity-constraint hook ------------------------------------------------

    def add_commit_validator(self, validator: CommitValidator) -> None:
        self._commit_validators.append(validator)

    def remove_commit_validator(self, validator: CommitValidator) -> None:
        self._commit_validators.remove(validator)

    # -- time ----------------------------------------------------------------------

    def _next_timestamp(self, at_time: Optional[int]) -> int:
        last_ts = self._last_state.timestamp if self._last_state else None
        if at_time is not None:
            if at_time > self.clock.now:
                self.clock.advance_to(at_time)
            elif at_time < self.clock.now:
                raise ClockError(
                    f"cannot schedule event at {at_time}: clock is at "
                    f"{self.clock.now}"
                )
            if last_ts is not None and at_time <= last_ts:
                raise ClockError(
                    f"timestamp {at_time} not after last system state "
                    f"({last_ts})"
                )
            return at_time
        if last_ts is None or self.clock.now > last_ts:
            return self.clock.now
        return self.clock.advance_by(1)

    # -- degraded read-only mode ---------------------------------------------

    def enter_degraded(self, reason: str) -> None:
        """Switch to degraded read-only mode: the disk stayed unwritable
        past bounded retries, so durable appends are refused cleanly
        (typed :class:`StorageDegradedError`) instead of letting the
        in-memory and durable histories diverge.  Idempotent."""
        if not self.degraded:
            self.degraded = True
            self._m_degraded.set(1)
        self.degraded_reason = reason

    def exit_degraded(self) -> None:
        """Leave degraded mode after probing that the disk writes again.
        Each attached storage consumer (durability provider, tiered
        store) is probed with a real write+fsync; an unhealthy disk
        raises ``OSError`` and the engine stays degraded."""
        if not self.degraded:
            return
        if self.durability is not None and hasattr(self.durability, "probe"):
            self.durability.probe()
        if self.tiered is not None:
            self.tiered.probe()
        self.degraded = False
        self.degraded_reason = None
        self._m_degraded.set(0)

    def _prepare_durable(self, state: SystemState) -> None:
        """Make ``state`` durable *before* it is installed anywhere.  In
        degraded mode the append is refused outright; otherwise an I/O
        failure in the provider surfaces here, leaving memory untouched."""
        if self.degraded:
            raise StorageDegradedError(
                f"storage degraded ({self.degraded_reason}); refusing to "
                f"append state at t={state.timestamp} — call "
                "exit_degraded() once the disk recovers",
                reason=self.degraded_reason or "",
            )
        if self.durability is not None and hasattr(self.durability, "prepare"):
            self.durability.prepare(state)

    # -- state appends ----------------------------------------------------------------

    _NO_DELTA: frozenset = frozenset()

    def _append(
        self,
        db_state,
        events: Iterable[ev.Event],
        ts: int,
        delta: Optional[frozenset] = _NO_DELTA,
        prepared: bool = False,
    ) -> SystemState:
        state = SystemState(
            db_state, events, ts, index=self._state_count, delta=delta
        )
        if not prepared:
            self._prepare_durable(state)
        if self.history is not None:
            state = self.history.append(state)
        self._state_count += 1
        self._last_state = state
        if self._obs_on:
            self._m_states.inc()
            if self.history is not None:
                self._m_history_len.set(len(self.history))
        try:
            self.bus.publish(state)
        except ReproError:
            raise
        except Exception as exc:
            # The state is already appended (and, with a WAL attached,
            # durable); a subscriber blowing up is an action failure, not a
            # storage or transaction failure.
            raise ActionError(
                f"subscriber failed while processing state "
                f"#{state.index} (t={ts}): {exc}"
            ) from exc
        return state

    def post_event(
        self,
        event: Union[ev.Event, Iterable[ev.Event]],
        at_time: Optional[int] = None,
    ) -> SystemState:
        """Record one event (or a set of simultaneous events) occurring
        outside any transaction; appends one system state."""
        events = [event] if isinstance(event, ev.Event) else list(event)
        ts = self._next_timestamp(at_time)
        return self._append(self.db.state, events, ts)

    def tick(self, at_time: Optional[int] = None) -> SystemState:
        """Advance time and record a clock-tick event (so conditions like
        ``time = 540`` have a state at which to be observed)."""
        return self.post_event(ev.Event(ev.CLOCK_TICK), at_time)

    # -- transactions --------------------------------------------------------------------

    def begin(self, at_time: Optional[int] = None) -> Transaction:
        txn = self.txns.begin(self.db, self)
        if self.begin_states:
            ts = self._next_timestamp(at_time)
            state = self._append(
                self.db.state, [ev.transaction_begin(txn.id)], ts
            )
            txn.begin_time = state.timestamp
        else:
            if at_time is not None and at_time > self.clock.now:
                self.clock.advance_to(at_time)
            txn.begin_time = self.clock.now
        return txn

    def execute(
        self,
        work: Callable[[Transaction], Any],
        at_time: Optional[int] = None,
        commit_time: Optional[int] = None,
    ) -> Transaction:
        """Run ``work`` inside a fresh transaction and commit it."""
        txn = self.begin(at_time)
        try:
            work(txn)
        except Exception:
            if txn.status is TxnStatus.ACTIVE:
                txn.abort(reason="exception in transaction body")
            raise
        txn.commit(commit_time)
        return txn

    # -- ingest batching / group commit --------------------------------------------

    @contextmanager
    def batch(self):
        """Group-commit scope: every state appended inside the ``with``
        block is logged to the WAL (when attached) without an fsync of its
        own; one fsync at block exit makes the whole batch durable
        atomically — recovery replays the batch entirely or not at all,
        never a prefix.  Rule managers defer trigger processing until the
        batch is durable (integrity constraints still check every commit
        immediately — aborts must veto *inside* the batch)."""
        if self.in_batch:
            raise ReproError("engine batches do not nest")
        self.in_batch = True
        if self.durability is not None:
            self.durability.begin_group()
        try:
            yield self
        finally:
            self.in_batch = False
            if self.durability is not None:
                self.durability.end_group()
        # Only on clean exit (durable point reached): let the temporal
        # component process the batched states.
        if self._obs_on:
            self._m_batches.inc()
        for listener in list(self.batch_listeners):
            listener()

    def enqueue(self, work: Callable[[Transaction], Any]) -> int:
        """Queue a transaction body for the next :meth:`drain`; returns
        the queue depth.  Raises :class:`QueueFullError` past
        ``max_queue`` — backpressure, not silent loss."""
        if len(self._txn_queue) >= self.max_queue:
            raise QueueFullError(
                f"ingest queue full ({self.max_queue} transactions); "
                "drain() before enqueueing more"
            )
        self._txn_queue.append(work)
        depth = len(self._txn_queue)
        if self._obs_on:
            self._m_queue_depth.set(depth)
        return depth

    @property
    def queue_depth(self) -> int:
        return len(self._txn_queue)

    def drain(self, max_batch: Optional[int] = None) -> list[Transaction]:
        """Run queued transaction bodies (up to ``max_batch``) inside one
        :meth:`batch`: their WAL records reach the disk with a single
        fsync and their triggers are dispatched to the temporal component
        in one round.  A transaction aborted by an integrity constraint
        stays aborted without poisoning the rest of the batch.  Returns
        the finished transactions (committed and aborted)."""
        count = len(self._txn_queue)
        if max_batch is not None:
            count = min(count, max_batch)
        if count == 0:
            return []
        done: list[Transaction] = []
        with self.batch():
            for _ in range(count):
                work = self._txn_queue.popleft()
                txn = self.begin()
                try:
                    work(txn)
                    txn.commit()
                except TransactionAborted:
                    # An integrity-constraint veto aborts this
                    # transaction only; the batch carries on.
                    pass
                except Exception:
                    if txn.status is TxnStatus.ACTIVE:
                        txn.abort(reason="exception in transaction body")
                    raise
                done.append(txn)
        if self._obs_on:
            self._m_queue_depth.set(len(self._txn_queue))
            self._m_batch_txns.observe(count)
        return done

    def _commit(self, txn: Transaction, at_time: Optional[int]) -> SystemState:
        ts = self._next_timestamp(at_time)
        candidate_db = txn.apply_to(self.db.state)
        events = (
            [ev.attempts_to_commit(txn.id), ev.transaction_commit(txn.id)]
            + txn.events
        )
        delta = txn.write_set()
        candidate = SystemState(
            candidate_db, events, ts, index=self._state_count, delta=delta
        )

        violations: list[str] = []
        for validator in self._commit_validators:
            violations.extend(validator(candidate, txn))

        if violations:
            self.txns.finish(txn, TxnStatus.ABORTED)
            if self._obs_on:
                self._m_aborts.inc()
            self._append(
                self.db.state,
                [ev.attempts_to_commit(txn.id), ev.transaction_abort(txn.id)],
                ts,
            )
            raise TransactionAborted(txn.id, "; ".join(violations))

        # Durable point: the commit record reaches the WAL *before* the
        # new database state is installed — an unwritable disk refuses the
        # commit cleanly (memory untouched, transaction still ACTIVE for
        # the caller to abort) instead of leaving the in-memory and
        # durable histories divergent.  Once installed, the transaction is
        # COMMITTED before rule actions run: an exception raised by an
        # action (publication below) surfaces as a typed ActionError with
        # the commit already decided, instead of masquerading as a
        # transaction failure.
        self._prepare_durable(candidate)
        self.db._set_state(candidate_db)
        self.txns.finish(txn, TxnStatus.COMMITTED)
        if self._obs_on:
            self._m_commits.inc()
        return self._append(candidate_db, events, ts, delta=delta, prepared=True)

    def _abort(
        self, txn: Transaction, at_time: Optional[int], reason: str
    ) -> SystemState:
        ts = self._next_timestamp(at_time)
        self.txns.finish(txn, TxnStatus.ABORTED)
        if self._obs_on:
            self._m_aborts.inc()
        return self._append(self.db.state, [ev.transaction_abort(txn.id)], ts)
