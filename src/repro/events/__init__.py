"""Events, the global clock, and the event bus."""

from repro.events.bus import EventBus, Subscription
from repro.events.clock import TIME_ITEM, Clock
from repro.events.model import (
    ATTEMPTS_TO_COMMIT,
    CLOCK_TICK,
    DELETE_TUPLE,
    INSERT_TUPLE,
    RULE_EXECUTE,
    TRANSACTION_ABORT,
    TRANSACTION_BEGIN,
    TRANSACTION_COMMIT,
    UPDATE_ITEM,
    Event,
    attempts_to_commit,
    transaction_abort,
    transaction_begin,
    transaction_commit,
    user_event,
)

__all__ = [
    "Event",
    "EventBus",
    "Subscription",
    "Clock",
    "TIME_ITEM",
    "TRANSACTION_BEGIN",
    "TRANSACTION_COMMIT",
    "TRANSACTION_ABORT",
    "ATTEMPTS_TO_COMMIT",
    "INSERT_TUPLE",
    "DELETE_TUPLE",
    "UPDATE_ITEM",
    "RULE_EXECUTE",
    "CLOCK_TICK",
    "transaction_begin",
    "transaction_commit",
    "transaction_abort",
    "attempts_to_commit",
    "user_event",
]
