"""Event bus: connects the DBMS to the temporal component.

Section 8: "whenever an event occurs the database management system invokes
the temporal component".  Subscribers receive each appended
:class:`~repro.history.state.SystemState`; a subscriber may additionally
declare the event names it is *relevant* to, enabling the paper's
optimization of "consider only the relevant triggers".
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

Listener = Callable[..., None]


class Subscription:
    """Handle for a registered listener; ``cancel()`` unsubscribes."""

    __slots__ = ("listener", "event_names", "_bus", "active")

    def __init__(self, bus: "EventBus", listener: Listener, event_names):
        self.listener = listener
        self.event_names: Optional[frozenset[str]] = (
            None if event_names is None else frozenset(event_names)
        )
        self._bus = bus
        self.active = True

    def cancel(self) -> None:
        self.active = False
        self._bus._prune()

    def wants(self, event_names: Iterable[str]) -> bool:
        if self.event_names is None:
            return True
        return any(name in self.event_names for name in event_names)


class EventBus:
    """Dispatches appended system states to subscribers."""

    def __init__(self) -> None:
        self._subscriptions: list[Subscription] = []
        self.dispatch_count = 0
        self.delivery_count = 0
        self._m_on = False
        self._m_dispatch = None
        self._m_delivery = None
        self._m_events = None

    def attach_metrics(self, registry) -> None:
        """Route throughput counters into ``registry`` (no-op registries
        leave the publish path untouched)."""
        if not registry.enabled:
            return
        self._m_dispatch = registry.counter("bus_dispatch_total")
        self._m_delivery = registry.counter("bus_delivery_total")
        self._m_events = registry.counter("bus_events_total")
        self._m_on = True

    def subscribe(
        self,
        listener: Listener,
        event_names: Optional[Iterable[str]] = None,
        front: bool = False,
    ) -> Subscription:
        """Register ``listener``; if ``event_names`` is given, the listener
        is only invoked for states whose event set intersects it (the
        Section 8 relevance filter).  ``front=True`` places the listener
        ahead of existing subscribers — the write-ahead log uses this so a
        state is durable before any rule action observes it."""
        sub = Subscription(self, listener, event_names)
        if front:
            self._subscriptions.insert(0, sub)
        else:
            self._subscriptions.append(sub)
        return sub

    def publish(self, state) -> None:
        """Deliver a newly-appended system state to relevant subscribers."""
        self.dispatch_count += 1
        names = [e.name for e in state.events]
        delivered = 0
        for sub in list(self._subscriptions):
            if not sub.active:
                continue
            if not sub.wants(names):
                continue
            delivered += 1
            sub.listener(state)
        self.delivery_count += delivered
        if self._m_on:
            self._m_dispatch.inc()
            self._m_delivery.inc(delivered)
            self._m_events.inc(len(names))

    def _prune(self) -> None:
        self._subscriptions = [s for s in self._subscriptions if s.active]

    def __len__(self) -> int:
        return len(self._subscriptions)
