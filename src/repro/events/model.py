"""Events: instantaneous, possibly parameterized occurrences (Section 2).

The paper's set U of events includes ``Transaction-begin``,
``Transaction-commit``, ``Rule-execute``, ``Insert-tuple`` etc., "many of
these events may be parameterized".  An :class:`Event` is a name plus a
tuple of parameter values; PTL event atoms match on the name and on
parameter *patterns* (constants, or variables that bind).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


# Standard event names -------------------------------------------------------

TRANSACTION_BEGIN = "transaction_begin"
TRANSACTION_COMMIT = "transaction_commit"
TRANSACTION_ABORT = "transaction_abort"
ATTEMPTS_TO_COMMIT = "attempts_to_commit"
INSERT_TUPLE = "insert_tuple"
DELETE_TUPLE = "delete_tuple"
UPDATE_ITEM = "update_item"
RULE_EXECUTE = "rule_execute"
CLOCK_TICK = "clock_tick"

STANDARD_EVENTS = frozenset(
    {
        TRANSACTION_BEGIN,
        TRANSACTION_COMMIT,
        TRANSACTION_ABORT,
        ATTEMPTS_TO_COMMIT,
        INSERT_TUPLE,
        DELETE_TUPLE,
        UPDATE_ITEM,
        RULE_EXECUTE,
        CLOCK_TICK,
    }
)


@dataclass(frozen=True)
class Event:
    """An instantaneous event occurrence: ``name(params...)``.

    ``Event("transaction_begin", (30,))`` is the paper's
    ``Transaction-begin(30)``.
    """

    name: str
    params: tuple = ()

    def __str__(self) -> str:
        if not self.params:
            return self.name
        return f"{self.name}({', '.join(map(repr, self.params))})"

    def matches(self, name: str, arg_values: tuple) -> bool:
        """Exact match on name and fully-ground parameter values."""
        return self.name == name and self.params == arg_values


def transaction_begin(txn_id: int) -> Event:
    return Event(TRANSACTION_BEGIN, (txn_id,))


def transaction_commit(txn_id: int) -> Event:
    return Event(TRANSACTION_COMMIT, (txn_id,))


def transaction_abort(txn_id: int) -> Event:
    return Event(TRANSACTION_ABORT, (txn_id,))


def attempts_to_commit(txn_id: int) -> Event:
    return Event(ATTEMPTS_TO_COMMIT, (txn_id,))


def insert_tuple(relation: str, values: tuple) -> Event:
    return Event(INSERT_TUPLE, (relation,) + tuple(values))


def delete_tuple(relation: str, values: tuple) -> Event:
    return Event(DELETE_TUPLE, (relation,) + tuple(values))


def update_item(name: str) -> Event:
    return Event(UPDATE_ITEM, (name,))


def rule_execute(rule_name: str, params: tuple = ()) -> Event:
    return Event(RULE_EXECUTE, (rule_name,) + tuple(params))


def user_event(name: str, *params: Any) -> Event:
    """A user-defined event, e.g. ``user_event("user_login", "X")``."""
    return Event(name, tuple(params))
