"""The global clock.

The paper assumes "a fixed global clock" whose value is exposed as a data
item called ``time`` (Section 2), and that timestamps along a history are
strictly increasing (simultaneous events share one system state).  The
clock is *logical*: workloads and tests advance it explicitly, which makes
every experiment deterministic.
"""

from __future__ import annotations

from repro.errors import ClockError

#: Name of the data item exposing the clock (Section 2).
TIME_ITEM = "time"


class Clock:
    """A strictly-increasing integer clock."""

    __slots__ = ("_now",)

    def __init__(self, start: int = 0):
        self._now = int(start)

    @property
    def now(self) -> int:
        return self._now

    def advance_to(self, timestamp: int) -> int:
        """Move the clock forward to ``timestamp`` (must be > now)."""
        if timestamp <= self._now:
            raise ClockError(
                f"clock cannot move to {timestamp} (now is {self._now})"
            )
        self._now = int(timestamp)
        return self._now

    def advance_by(self, delta: int = 1) -> int:
        if delta <= 0:
            raise ClockError(f"clock delta must be positive, got {delta}")
        self._now += int(delta)
        return self._now

    def __repr__(self) -> str:
        return f"Clock(now={self._now})"
