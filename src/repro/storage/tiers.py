"""Checksummed on-disk segments for the tiered history subsystem.

A :class:`SegmentStore` owns a directory of append-only *segments*: each
segment is one jsonl file written once and sealed — a header line carrying
the record count and a SHA-256 over the payload, followed by the records
(same jsonl idiom as :mod:`repro.storage.log`).  The payload hash doubles
as the segment's *fingerprint*: checkpoints reference live segments by
``(name, sha256)`` and recovery refuses to load anything that does not
match — a corrupted segment is never read back as data.

Every disk path is hardened:

* writes go through :func:`retry_io` — bounded retry-with-backoff on
  *transient* ``OSError`` (EIO, EAGAIN, ...); ENOSPC is not transient and
  surfaces immediately so callers can enter degraded mode;
* segment load truncates a torn trailing record (crash mid-write), then
  validates the header count and payload hash — a torn or unsealed
  segment is *refused*, not half-read;
* :meth:`SegmentStore.quarantine_orphans` renames segment files that no
  manifest or checkpoint references (the debris of a crash mid-spill) so
  they can never shadow live data;
* the directory is fsynced after each segment creation and the manifest
  is replaced via :func:`~repro.storage.persist.atomic_write_text`.

Fault injection: the store honours the ``mid-segment-write`` /
``torn-segment`` crash points and the ``disk-full`` / ``fsync-fail``
I/O fault points of :mod:`repro.recovery.faultinject`.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro.errors import RecoveryError, StorageError
from repro.obs.metrics import as_registry
from repro.storage.persist import atomic_write_text, fsync_dir

PathLike = Union[str, Path]

SEGMENT_FORMAT = 1
HEADER_KIND = "segment-header"
MANIFEST_NAME = "MANIFEST.json"

#: Errnos worth retrying: the disk may answer on the next attempt.
#: ENOSPC is deliberately absent — a full disk does not heal by waiting,
#: it degrades the engine.
TRANSIENT_ERRNOS = frozenset(
    {errno.EIO, errno.EAGAIN, errno.EINTR, errno.EBUSY, errno.ETIMEDOUT}
)


def retry_io(
    fn: Callable,
    retries: int = 3,
    backoff: float = 0.002,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[OSError, int], None]] = None,
):
    """Run ``fn`` with bounded retry-with-backoff on transient ``OSError``.

    Each retry doubles the backoff.  Non-transient errnos (ENOSPC above
    all) and exhaustion propagate the original ``OSError`` to the caller,
    whose job is then to degrade, not to loop."""
    attempt = 0
    while True:
        try:
            return fn()
        except OSError as exc:
            transient = exc.errno in TRANSIENT_ERRNOS
            if not transient or attempt >= retries:
                raise
            if on_retry is not None:
                on_retry(exc, attempt)
            sleep(backoff * (2 ** attempt))
            attempt += 1


class SegmentStore:
    """A directory of sealed, checksummed jsonl segments."""

    def __init__(
        self,
        directory: PathLike,
        fsync: bool = True,
        injector=None,
        metrics=None,
        retries: int = 3,
        backoff: float = 0.002,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.injector = injector
        self.retries = retries
        self.backoff = backoff
        self._sleep = sleep
        self.metrics = as_registry(metrics)
        self._m_faults = self.metrics.counter("segment_faults_total")
        self._m_retries = self.metrics.counter("io_retries_total")
        self._m_segments = self.metrics.gauge("segments_total")
        self._m_write_s = self.metrics.histogram("segment_write_seconds")
        self._m_load_s = self.metrics.histogram("segment_load_seconds")
        self._next_id = self._scan_next_id()

    # -- naming ------------------------------------------------------------

    def _scan_next_id(self) -> int:
        highest = 0
        for path in self.directory.glob("seg-*.jsonl*"):
            stem = path.name.split(".", 1)[0]
            try:
                highest = max(highest, int(stem.rsplit("-", 1)[-1]))
            except ValueError:
                continue
        return highest + 1

    def segment_path(self, name: str) -> Path:
        return self.directory / name

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    # -- writing -----------------------------------------------------------

    def _retry(self, fn):
        def note(exc: OSError, attempt: int) -> None:
            self._m_retries.inc()

        return retry_io(
            fn,
            retries=self.retries,
            backoff=self.backoff,
            sleep=self._sleep,
            on_retry=note,
        )

    def write_segment(
        self, tier: str, records: list, meta: Optional[dict] = None
    ) -> dict:
        """Seal ``records`` into a new segment; returns its descriptor
        ``{name, tier, count, sha256, bytes, meta}``.

        The write is a single pass — header, payload, fsync, directory
        fsync — retried as a whole on transient errors (reopening with
        ``"w"`` makes a retry idempotent).  A crash mid-write leaves a
        file that load/quarantine will refuse; the caller must not drop
        its in-memory copy until this method returns."""
        from repro.recovery.faultinject import (
            DISK_FULL,
            FSYNC_FAIL,
            MID_SEGMENT_WRITE,
            TORN_SEGMENT,
        )

        name = f"seg-{tier}-{self._next_id:06d}.jsonl"
        self._next_id += 1
        lines = [json.dumps(r, sort_keys=True) + "\n" for r in records]
        payload = "".join(lines)
        digest = hashlib.sha256(payload.encode()).hexdigest()
        header = json.dumps(
            {
                "kind": HEADER_KIND,
                "format": SEGMENT_FORMAT,
                "tier": tier,
                "count": len(records),
                "sha256": digest,
                "meta": meta or {},
            },
            sort_keys=True,
        ) + "\n"
        path = self.segment_path(name)
        injector = self.injector

        def write_file() -> None:
            with open(path, "w") as fp:
                if injector is not None:
                    injector.io_check(DISK_FULL)
                fp.write(header)
                if injector is not None and injector.due(MID_SEGMENT_WRITE):
                    # Half the payload reaches the disk, then the machine
                    # dies with the segment unsealed.
                    fp.write(payload[: len(payload) // 2])
                    fp.flush()
                    os.fsync(fp.fileno())
                    injector.hit(MID_SEGMENT_WRITE)
                if injector is not None and injector.due(TORN_SEGMENT) and lines:
                    # All but half of the final record reaches the disk.
                    torn = len(payload) - max(1, len(lines[-1]) // 2)
                    fp.write(payload[:torn])
                    fp.flush()
                    os.fsync(fp.fileno())
                    injector.hit(TORN_SEGMENT)
                fp.write(payload)
                fp.flush()
                if self.fsync:
                    if injector is not None:
                        injector.io_check(FSYNC_FAIL)
                    os.fsync(fp.fileno())

        started = time.perf_counter()
        try:
            self._retry(write_file)
        except OSError:
            self._m_faults.inc()
            # Never leave a half-written file where a live segment name
            # points; the in-memory copy is still authoritative.
            try:
                os.unlink(path)
            except OSError:
                pass
            raise
        if self.fsync:
            fsync_dir(self.directory)
        info = {
            "name": name,
            "tier": tier,
            "count": len(records),
            "sha256": digest,
            "bytes": len(header) + len(payload),
            "meta": meta or {},
        }
        self._update_manifest(info)
        self._m_write_s.observe(time.perf_counter() - started)
        self._m_segments.inc()
        return info

    def _update_manifest(self, info: dict) -> None:
        manifest = self.read_manifest()
        manifest["segments"].append(info)
        atomic_write_text(
            self.manifest_path,
            json.dumps(manifest, sort_keys=True),
            fsync=self.fsync,
        )

    def read_manifest(self) -> dict:
        if not self.manifest_path.exists():
            return {"format": SEGMENT_FORMAT, "segments": []}
        try:
            return json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"unreadable segment manifest {str(self.manifest_path)!r}: "
                f"{exc}"
            ) from exc

    # -- loading -----------------------------------------------------------

    def load_segment(self, ref: Union[str, dict]) -> list:
        """Load and verify one sealed segment; returns its records.

        ``ref`` is a descriptor (fingerprint verified) or a bare name
        (header self-check only).  A torn trailing record is truncated
        from the parse, after which any header/count/hash mismatch means
        the segment never sealed (or rotted) and it is refused with
        :class:`~repro.errors.RecoveryError` — no partial reads."""
        name = ref if isinstance(ref, str) else ref["name"]
        expected_sha = None if isinstance(ref, str) else ref["sha256"]
        path = self.segment_path(name)
        started = time.perf_counter()
        if not path.exists():
            self._m_faults.inc()
            raise RecoveryError(f"missing history segment {name!r}")
        data = path.read_bytes()
        lines = data.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        else:
            # Torn tail: the final record has no newline — a crash
            # mid-write.  Truncate it from the parse; the header check
            # below then refuses the unsealed segment.
            lines = lines[:-1]
        records = []
        header = None
        payload_parts = []
        for i, raw in enumerate(lines):
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                if i + 1 < len(lines):
                    self._m_faults.inc()
                    raise RecoveryError(
                        f"corrupt record mid-segment in {name!r} "
                        f"(line {i + 1})"
                    ) from None
                break  # torn trailing record: truncated from the parse
            if i == 0:
                if record.get("kind") != HEADER_KIND:
                    self._m_faults.inc()
                    raise RecoveryError(f"segment {name!r} has no header")
                header = record
            else:
                records.append(record)
                payload_parts.append(raw)
        if header is None:
            self._m_faults.inc()
            raise RecoveryError(f"segment {name!r} is empty or torn")
        payload = b"".join(p + b"\n" for p in payload_parts)
        digest = hashlib.sha256(payload).hexdigest()
        if len(records) != header["count"] or digest != header["sha256"]:
            self._m_faults.inc()
            raise RecoveryError(
                f"segment {name!r} failed verification: "
                f"{len(records)}/{header['count']} records, "
                f"payload hash {'mismatch' if digest != header['sha256'] else 'ok'}"
                " — refusing to load a torn or corrupted segment"
            )
        if expected_sha is not None and digest != expected_sha:
            self._m_faults.inc()
            raise RecoveryError(
                f"segment {name!r} does not match its checkpointed "
                f"fingerprint — refusing to load"
            )
        self._m_load_s.observe(time.perf_counter() - started)
        return records

    def verify(self, ref: dict) -> None:
        """Full fingerprint verification of one referenced segment."""
        self.load_segment(ref)

    def quarantine_orphans(self, live_names) -> list[str]:
        """Rename segment files not in ``live_names`` to ``*.orphan`` so
        crash debris (an unsealed spill) can never be confused with live
        data.  Returns the quarantined names."""
        live = set(live_names)
        quarantined = []
        for path in sorted(self.directory.glob("seg-*.jsonl")):
            if path.name not in live:
                os.replace(path, path.with_suffix(path.suffix + ".orphan"))
                quarantined.append(path.name)
                self._m_faults.inc()
        if quarantined and self.fsync:
            fsync_dir(self.directory)
        return quarantined

    def probe(self) -> None:
        """Verify the directory is writable again (degraded-mode exit):
        write, fsync, and remove a probe file.  Raises ``OSError`` while
        the disk is still unhealthy."""
        from repro.recovery.faultinject import DISK_FULL, FSYNC_FAIL

        path = self.directory / ".probe"
        with open(path, "w") as fp:
            if self.injector is not None:
                self.injector.io_check(DISK_FULL)
            fp.write("ok")
            fp.flush()
            if self.injector is not None:
                self.injector.io_check(FSYNC_FAIL)
            os.fsync(fp.fileno())
        os.unlink(path)
