"""Hash indexes over immutable relations.

Relations are immutable, so an index is built once per (relation version,
attribute tuple) and cached on the relation object.  The query evaluator
uses indexes for equality selections (``R.a = const``) and joins; auxiliary
structures in the temporal component get them for free.
"""

from __future__ import annotations

from typing import Sequence

from repro.datamodel.relation import Relation
from repro.datamodel.tuples import Row
from repro.errors import UnknownAttributeError


class HashIndex:
    """Equality index on one or more attributes of a single relation
    version."""

    __slots__ = ("relation", "attrs", "_buckets")

    def __init__(self, relation: Relation, attrs: Sequence[str]):
        for a in attrs:
            if a not in relation.schema:
                raise UnknownAttributeError(f"no attribute {a!r}")
        self.relation = relation
        self.attrs = tuple(attrs)
        buckets: dict[tuple, list[Row]] = {}
        positions = [relation.schema.position(a) for a in self.attrs]
        for row in relation.rows:
            key = tuple(row[p] for p in positions)
            buckets.setdefault(key, []).append(row)
        self._buckets = {k: tuple(v) for k, v in buckets.items()}

    def lookup(self, *values) -> tuple[Row, ...]:
        """Rows whose indexed attributes equal ``values``."""
        if len(values) != len(self.attrs):
            raise UnknownAttributeError(
                f"index on {self.attrs} takes {len(self.attrs)} value(s)"
            )
        return self._buckets.get(tuple(values), ())

    def keys(self) -> list[tuple]:
        return sorted(self._buckets, key=repr)

    def __len__(self) -> int:
        return len(self._buckets)


def index_for(relation: Relation, attrs: Sequence[str]) -> HashIndex:
    """The (cached) hash index of ``relation`` on ``attrs``."""
    cache = relation._index_cache
    if cache is None:
        cache = {}
        relation._index_cache = cache
    key = tuple(attrs)
    index = cache.get(key)
    if index is None:
        index = HashIndex(relation, key)
        cache[key] = index
    return index
