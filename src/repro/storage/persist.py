"""JSON persistence for the database: catalog + current committed state.

The paper's model keeps "only the current information" in the database
(Section 10 — history is the temporal component's business), so a snapshot
is exactly the catalog and the current state.  Histories, rules, and
evaluator states are runtime artifacts and deliberately not serialized;
reload and re-register rules to resume monitoring from the restored state.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro.datamodel.relation import Relation
from repro.datamodel.schema import Attribute, Schema
from repro.datamodel.types import ValueType
from repro.errors import StorageError
from repro.storage.snapshot import IndexedItem

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def fsync_dir(path: PathLike) -> None:
    """fsync a directory so a rename or file creation inside it survives a
    crash — ``os.replace`` makes the swap atomic but only a directory
    fsync makes it durable.  A no-op on platforms/filesystems that refuse
    to open directories."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: PathLike,
    text: str,
    fsync: bool = True,
    before_replace: Optional[Callable[[str], None]] = None,
) -> None:
    """Durably replace ``path`` with ``text``: write a sibling temp file,
    flush (and by default fsync) it, ``os.replace`` over the target, then
    fsync the parent directory so the rename itself survives a crash.
    A crash at any point leaves either the old file or the new one — never
    a truncated mix.  ``before_replace`` is a fault-injection hook called
    with the temp path after the write but before the rename."""
    target = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent) if str(target.parent) else ".",
        prefix=target.name + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w") as fp:
            fp.write(text)
            fp.flush()
            if fsync:
                os.fsync(fp.fileno())
        if before_replace is not None:
            before_replace(tmp)
        os.replace(tmp, target)
        if fsync:
            fsync_dir(target.parent if str(target.parent) else ".")
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _encode_value(value: Any):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    raise StorageError(f"cannot serialize value {value!r}")


def _encode_item(value: Any):
    if isinstance(value, Relation):
        return {
            "kind": "relation",
            "schema": [[a.name, a.vtype.value] for a in value.schema],
            "rows": [list(map(_encode_value, r.values)) for r in value.sorted_rows()],
        }
    if isinstance(value, IndexedItem):
        return {
            "kind": "indexed",
            "default": _encode_value(value._default),
            "entries": [
                [list(map(_encode_value, k)), _encode_value(value.get(k))]
                for k in value.indices()
            ],
        }
    return {"kind": "scalar", "value": _encode_value(value)}


def _decode_item(payload: dict):
    kind = payload.get("kind")
    if kind == "relation":
        schema = Schema(
            Attribute(name, ValueType(vtype)) for name, vtype in payload["schema"]
        )
        return Relation.from_values(schema, [tuple(r) for r in payload["rows"]])
    if kind == "indexed":
        return IndexedItem(
            {tuple(k): v for k, v in payload["entries"]},
            payload["default"],
        )
    if kind == "scalar":
        return payload["value"]
    raise StorageError(f"unknown item kind {kind!r}")


def dump_database(engine, path: PathLike) -> None:
    """Write the engine's catalog, current state, queries, and clock to
    ``path`` as JSON.  If the engine carries an enabled metrics registry,
    the snapshot size and count are recorded
    (``storage_snapshot_bytes``/``storage_snapshots_total``)."""
    state = engine.db.state
    payload = {
        "format": _FORMAT_VERSION,
        "clock": engine.now,
        "items": {
            name: _encode_item(state.raw_item(name))
            for name in state.item_names()
        },
        "queries": {
            name: {
                "params": list(engine.db.queries.get(name).params),
                "text": str(engine.db.queries.get(name).body),
            }
            for name in engine.db.queries.names()
        },
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    atomic_write_text(path, text)
    registry = getattr(engine, "metrics", None)
    if registry is not None and registry.enabled:
        registry.gauge("storage_snapshot_bytes").set(len(text))
        registry.counter("storage_snapshots_total").inc()


def load_database(path: PathLike):
    """Reconstitute an :class:`~repro.engine.ActiveDatabase` from a dump
    (fresh history; rules must be re-registered)."""
    from repro.engine import ActiveDatabase

    payload = json.loads(Path(path).read_text())
    if payload.get("format") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported snapshot format {payload.get('format')!r}"
        )
    engine = ActiveDatabase(start_time=payload["clock"])
    for name, item in sorted(payload["items"].items()):
        value = _decode_item(item)
        if isinstance(value, Relation):
            engine.create_relation(
                name, value.schema, [r.values for r in value.sorted_rows()]
            )
        else:
            engine.declare_item(name, value)
    for name, qdef in sorted(payload["queries"].items()):
        engine.define_query(name, qdef["params"], qdef["text"])
    return engine
