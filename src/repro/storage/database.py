"""The database proper: catalog, current state, named-query registry.

:class:`Database` owns the schema catalog and the *current* committed
:class:`~repro.storage.snapshot.DatabaseState`.  It knows nothing about
events, histories, or rules — that wiring lives in
:class:`repro.engine.ActiveDatabase`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.datamodel.relation import Relation
from repro.datamodel.schema import Schema
from repro.errors import DuplicateRelationError, StorageError, UnknownRelationError
from repro.query.subst import QueryDef, QueryRegistry
from repro.storage.snapshot import DatabaseState, IndexedItem


class Database:
    """Catalog + current state + query registry."""

    def __init__(self) -> None:
        self._schemas: dict[str, Schema] = {}
        self._state = DatabaseState({}, version=0)
        self.queries = QueryRegistry()

    # -- catalog -----------------------------------------------------------

    def create_relation(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[Any]] = (),
    ) -> Relation:
        """Create an empty (or pre-populated) relation."""
        if name in self._schemas or self._state.has_item(name):
            raise DuplicateRelationError(f"item {name!r} already exists")
        relation = Relation.from_values(schema, rows)
        self._schemas[name] = schema
        self._state = self._state.with_updates({name: relation})
        return relation

    def declare_item(self, name: str, initial: Any) -> None:
        """Create a scalar database item (e.g. for aggregate rewriting)."""
        if self._state.has_item(name):
            raise DuplicateRelationError(f"item {name!r} already exists")
        self._state = self._state.with_updates({name: initial})

    def declare_indexed_item(self, name: str, default: Any = None) -> None:
        """Create an indexed item family (Section 6.1.1, ``CUM_PRICE(x)``)."""
        if self._state.has_item(name):
            raise DuplicateRelationError(f"item {name!r} already exists")
        self._state = self._state.with_updates({name: IndexedItem(default=default)})

    def schema(self, name: str) -> Schema:
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownRelationError(f"no relation named {name!r}") from None

    def relation_names(self) -> list[str]:
        return sorted(self._schemas)

    # -- named queries -------------------------------------------------------

    def define_query(
        self, name: str, params: Sequence[str], text: str
    ) -> QueryDef:
        """Register a named, parameterized query (a paper 'function symbol
        denoting a query'), e.g.::

            db.define_query("price", ["name"],
                "RETRIEVE (S.price) FROM STOCK S WHERE S.name = $name")
        """
        return self.queries.define_text(name, tuple(params), text)

    # -- state -----------------------------------------------------------------

    @property
    def state(self) -> DatabaseState:
        return self._state

    def _set_state(self, state: DatabaseState) -> None:
        self._state = state

    def apply_changes(self, changes: Mapping[str, Any]) -> DatabaseState:
        """Install a new current state with ``changes`` applied."""
        for name in changes:
            if not self._state.has_item(name):
                raise StorageError(f"unknown database item {name!r}")
        self._state = self._state.with_updates(changes)
        return self._state
