"""Transactions: buffered write sets applied atomically at commit.

In the transaction-time model (Section 2), all of a transaction's changes
appear in the single system state created by its commit event: "the new
database state reflects all and only the database changes made by the
transaction".  A :class:`Transaction` therefore buffers operations against
a private view and the engine materializes them at commit.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Mapping, Optional

from repro.datamodel.relation import Relation
from repro.datamodel.tuples import Row
from repro.errors import TransactionStateError
from repro.events import model as ev
from repro.storage.database import Database
from repro.storage.snapshot import DatabaseState, IndexedItem


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class WriteOp:
    """One buffered update: (item name, valid time, apply function).

    ``valid_time`` is None in the transaction-time model; the valid-time
    engine (Section 9) stamps each update with the time at which it is
    claimed to have occurred in the real world.
    """

    __slots__ = ("item", "apply", "valid_time", "describe")

    def __init__(
        self,
        item: str,
        apply: Callable[[Any], Any],
        valid_time: Optional[int] = None,
        describe: str = "",
    ):
        self.item = item
        self.apply = apply
        self.valid_time = valid_time
        self.describe = describe

    def __repr__(self) -> str:
        return f"WriteOp({self.item}, {self.describe or 'fn'}, vt={self.valid_time})"


class Transaction:
    """A transaction handle.  Obtain via ``ActiveDatabase.begin()``."""

    def __init__(self, txn_id: int, database: Database, engine):
        self.id = txn_id
        self._database = database
        self._engine = engine
        self.status = TxnStatus.ACTIVE
        self.writes: list[WriteOp] = []
        self.events: list[ev.Event] = []
        #: Timestamp of the system state created by this txn's begin event.
        self.begin_time: Optional[int] = None

    # -- buffered operations ---------------------------------------------------

    def _require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.id} is {self.status.value}"
            )

    def insert(
        self, relation: str, values, valid_time: Optional[int] = None
    ) -> None:
        self._require_active()
        schema = self._database.schema(relation)
        coerced = schema.check_row_values(tuple(values))
        self.writes.append(
            WriteOp(
                relation,
                lambda rel: rel.insert(coerced),
                valid_time,
                f"insert {coerced}",
            )
        )
        self.events.append(ev.insert_tuple(relation, coerced))

    def delete(
        self,
        relation: str,
        predicate: Callable[[Row], bool],
        valid_time: Optional[int] = None,
    ) -> None:
        self._require_active()
        self._database.schema(relation)
        self.writes.append(
            WriteOp(relation, lambda rel: rel.delete(predicate), valid_time, "delete")
        )
        self.events.append(ev.Event(ev.DELETE_TUPLE, (relation,)))

    def update(
        self,
        relation: str,
        predicate: Callable[[Row], bool],
        changes: Callable[[Row], Mapping[str, Any]],
        valid_time: Optional[int] = None,
    ) -> None:
        self._require_active()
        self._database.schema(relation)
        self.writes.append(
            WriteOp(
                relation,
                lambda rel: rel.update(predicate, changes),
                valid_time,
                "update",
            )
        )
        self.events.append(ev.update_item(relation))

    def set_item(
        self, name: str, value: Any, valid_time: Optional[int] = None
    ) -> None:
        self._require_active()
        self.writes.append(
            WriteOp(name, lambda _old: value, valid_time, f"set {value!r}")
        )
        self.events.append(ev.update_item(name))

    def set_indexed_item(
        self,
        name: str,
        index: tuple,
        value: Any,
        valid_time: Optional[int] = None,
    ) -> None:
        self._require_active()

        def apply(old: Any) -> Any:
            family = old if isinstance(old, IndexedItem) else IndexedItem()
            return family.with_entry(index, value)

        self.writes.append(
            WriteOp(name, apply, valid_time, f"set[{index!r}] {value!r}")
        )
        self.events.append(ev.update_item(name))

    def post_event(self, event: ev.Event) -> None:
        """Attach a user event to this transaction's commit state."""
        self._require_active()
        self.events.append(event)

    # -- resolution ------------------------------------------------------------

    def write_set(self) -> frozenset[str]:
        """Names of the database items this transaction's writes touch —
        recorded as ``SystemState.delta`` on the commit state so the
        temporal component can skip atoms over untouched items."""
        return frozenset(op.item for op in self.writes)

    def apply_to(self, state: DatabaseState) -> DatabaseState:
        """The state with this transaction's buffered writes applied."""
        changes: dict[str, Any] = {}
        for op in self.writes:
            current = changes.get(op.item, _item_of(state, op.item))
            changes[op.item] = op.apply(current)
        return state.with_updates(changes)

    def commit(self, at_time: Optional[int] = None):
        """Attempt to commit via the engine.  Raises
        :class:`~repro.errors.TransactionAborted` if an integrity
        constraint rejects the transaction."""
        self._require_active()
        return self._engine._commit(self, at_time)

    def abort(self, at_time: Optional[int] = None, reason: str = "user abort"):
        self._require_active()
        return self._engine._abort(self, at_time, reason)

    def __repr__(self) -> str:
        return f"Transaction({self.id}, {self.status.value}, {len(self.writes)} writes)"


def _item_of(state: DatabaseState, name: str) -> Any:
    return state.raw_item(name)


class TransactionManager:
    """Issues transaction ids and tracks live transactions."""

    def __init__(self) -> None:
        self._next_id = 1
        self.active: dict[int, Transaction] = {}

    def begin(self, database: Database, engine) -> Transaction:
        txn = Transaction(self._next_id, database, engine)
        self._next_id += 1
        self.active[txn.id] = txn
        return txn

    def finish(self, txn: Transaction, status: TxnStatus) -> None:
        txn.status = status
        self.active.pop(txn.id, None)
