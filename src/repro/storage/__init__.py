"""Storage engine: snapshots, catalog, transactions."""

from repro.storage.database import Database
from repro.storage.snapshot import DatabaseState, IndexedItem
from repro.storage.tiers import SegmentStore, retry_io
from repro.storage.transactions import Transaction, TransactionManager, TxnStatus

__all__ = [
    "Database",
    "DatabaseState",
    "IndexedItem",
    "SegmentStore",
    "Transaction",
    "TransactionManager",
    "TxnStatus",
    "retry_io",
]
