"""Storage engine: snapshots, catalog, transactions."""

from repro.storage.database import Database
from repro.storage.snapshot import DatabaseState, IndexedItem
from repro.storage.transactions import Transaction, TransactionManager, TxnStatus

__all__ = [
    "Database",
    "DatabaseState",
    "IndexedItem",
    "Transaction",
    "TransactionManager",
    "TxnStatus",
]
