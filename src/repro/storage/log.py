"""Change log: a durable record of every system state, replayable offline.

The engine keeps the current state; the temporal component keeps only what
its conditions need.  For *offline* auditing — checking a new temporal
constraint against last week's activity, or re-running the reference
semantics over an incident window — a durable log of (timestamp, events,
changed items) suffices to reconstruct the full system history:

    log = ChangeLog.attach(engine)          # record as the system runs
    log.to_jsonl(path)                      # persist
    history = ChangeLog.from_jsonl(path).replay()
    satisfies(history.states, i, constraint)

Replay reproduces timestamps, event names/parameters, and database states
exactly (values are serialized with the same codec as snapshots).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.errors import StorageError
from repro.events.model import Event
from repro.history.history import SystemHistory
from repro.history.state import SystemState
from repro.storage.persist import _decode_item, _encode_item, _encode_value
from repro.storage.snapshot import DatabaseState

PathLike = Union[str, Path]


class ChangeLog:
    """Per-state deltas captured off the engine's event bus."""

    def __init__(self) -> None:
        #: Each record: {"ts", "events": [[name, [params]]], "changes":
        #: {item: encoded}} — the first record carries the full base state.
        self.records: list[dict] = []
        self._prev: Optional[DatabaseState] = None
        self._subscription = None
        self._registry = None
        self._m_records = None

    # -- recording ------------------------------------------------------------

    @classmethod
    def attach(cls, engine) -> "ChangeLog":
        """Start recording the engine's published states (the base state
        is captured now; attach before the workload runs)."""
        log = cls()
        log._prev = engine.db.state
        log.records.append(
            {
                "ts": None,
                "events": [],
                "changes": {
                    name: _encode_item(engine.db.state.raw_item(name))
                    for name in engine.db.state.item_names()
                },
            }
        )
        log._subscription = engine.bus.subscribe(log._on_state)
        registry = getattr(engine, "metrics", None)
        if registry is not None and registry.enabled:
            log._registry = registry
            log._m_records = registry.counter("changelog_records_total")
        return log

    def _on_state(self, state: SystemState) -> None:
        changed = state.db.changed_items(self._prev)
        self.records.append(
            {
                "ts": state.timestamp,
                "events": [
                    [e.name, [_encode_value(p) for p in e.params]]
                    for e in sorted(state.events, key=str)
                ],
                "changes": {
                    name: _encode_item(state.db.raw_item(name))
                    for name in changed
                },
            }
        )
        self._prev = state.db
        if self._m_records is not None:
            self._m_records.inc()

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    # -- persistence ---------------------------------------------------------------

    def to_jsonl(self, path: PathLike) -> None:
        written = 0
        with open(path, "w") as fp:
            for record in self.records:
                written += fp.write(json.dumps(record, sort_keys=True) + "\n")
        if self._registry is not None:
            self._registry.gauge("changelog_bytes").set(written)

    @classmethod
    def from_jsonl(cls, path: PathLike) -> "ChangeLog":
        log = cls()
        with open(path) as fp:
            for line in fp:
                line = line.strip()
                if line:
                    log.records.append(json.loads(line))
        if not log.records:
            raise StorageError(f"empty change log {path!r}")
        return log

    # -- replay -----------------------------------------------------------------------

    def replay(self) -> SystemHistory:
        """Reconstruct the system history the log recorded."""
        if not self.records or self.records[0]["ts"] is not None:
            raise StorageError("log has no base-state record")
        base = self.records[0]
        db = DatabaseState(
            {name: _decode_item(item) for name, item in base["changes"].items()}
        )
        history = SystemHistory(validate_transaction_time=False)
        for record in self.records[1:]:
            changes = {
                name: _decode_item(item)
                for name, item in record["changes"].items()
            }
            if changes:
                db = db.with_updates(changes)
            events = [
                Event(name, tuple(params)) for name, params in record["events"]
            ]
            history.append(SystemState(db, events, record["ts"]))
        return history

    def __len__(self) -> int:
        return max(0, len(self.records) - 1)
