"""Change log: a durable record of every system state, replayable offline.

The engine keeps the current state; the temporal component keeps only what
its conditions need.  For *offline* auditing — checking a new temporal
constraint against last week's activity, or re-running the reference
semantics over an incident window — a durable log of (timestamp, events,
changed items) suffices to reconstruct the full system history:

    log = ChangeLog.attach(engine)          # record as the system runs
    log.to_jsonl(path)                      # persist
    history = ChangeLog.from_jsonl(path).replay()
    satisfies(history.states, i, constraint)

Replay reproduces timestamps, event names/parameters, and database states
exactly (values are serialized with the same codec as snapshots).
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Optional, Union

from repro.errors import StorageError
from repro.events.model import Event
from repro.history.history import SystemHistory
from repro.history.state import SystemState
from repro.storage.persist import (
    _decode_item,
    _encode_item,
    _encode_value,
    atomic_write_text,
)
from repro.storage.snapshot import DatabaseState

PathLike = Union[str, Path]


class ChangeLog:
    """Per-state deltas captured off the engine's event bus."""

    def __init__(self) -> None:
        #: Each record: {"ts", "events": [[name, [params]]], "changes":
        #: {item: encoded}} — the first record carries the full base state.
        self.records: list[dict] = []
        self._prev: Optional[DatabaseState] = None
        self._subscription = None
        self._registry = None
        self._m_records = None
        #: Records already persisted by append_jsonl / the stream.
        self._appended = 0
        self._stream = None
        self._stream_fsync = False

    # -- recording ------------------------------------------------------------

    @classmethod
    def attach(cls, engine) -> "ChangeLog":
        """Start recording the engine's published states (the base state
        is captured now; attach before the workload runs)."""
        log = cls()
        log._prev = engine.db.state
        log.records.append(
            {
                "ts": None,
                "events": [],
                "changes": {
                    name: _encode_item(engine.db.state.raw_item(name))
                    for name in engine.db.state.item_names()
                },
            }
        )
        log._subscription = engine.bus.subscribe(log._on_state)
        registry = getattr(engine, "metrics", None)
        if registry is not None and registry.enabled:
            log._registry = registry
            log._m_records = registry.counter("changelog_records_total")
        return log

    def _on_state(self, state: SystemState) -> None:
        changed = state.db.changed_items(self._prev)
        self.records.append(
            {
                "ts": state.timestamp,
                "events": [
                    [e.name, [_encode_value(p) for p in e.params]]
                    for e in sorted(state.events, key=str)
                ],
                "changes": {
                    name: _encode_item(state.db.raw_item(name))
                    for name in changed
                },
            }
        )
        self._prev = state.db
        if self._stream is not None:
            self._stream_records()
        if self._m_records is not None:
            self._m_records.inc()

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None
        self.close_stream()

    # -- persistence ---------------------------------------------------------------

    def to_jsonl(self, path: PathLike) -> None:
        """Rewrite ``path`` with the full record list.  The write is
        atomic (sibling temp file + fsync + rename): a crash mid-save
        leaves any previous log intact."""
        text = "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self.records
        )
        atomic_write_text(path, text)
        if self._registry is not None:
            self._registry.gauge("changelog_bytes").set(len(text))

    def append_jsonl(self, path: PathLike, fsync: bool = False) -> int:
        """Streaming append: write only the records captured since the
        last append (or since the log was loaded), returning how many were
        written.  Unlike :meth:`to_jsonl`, cost is proportional to the new
        records, not the log length."""
        pending = self.records[self._appended :]
        if pending:
            with open(path, "a") as fp:
                for record in pending:
                    fp.write(json.dumps(record, sort_keys=True) + "\n")
                fp.flush()
                if fsync:
                    os.fsync(fp.fileno())
            self._appended = len(self.records)
        return len(pending)

    def stream_to(self, path: PathLike, fsync: bool = False) -> None:
        """Open ``path`` for continuous appending: already-captured
        records are flushed now, and every future record is appended as it
        is captured (with an fsync per record when ``fsync`` is true)."""
        self.close_stream()
        self._stream = open(path, "a")
        self._stream_fsync = fsync
        self._stream_records()

    def close_stream(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def _stream_records(self) -> None:
        pending = self.records[self._appended :]
        if not pending:
            return
        for record in pending:
            self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()
        if self._stream_fsync:
            os.fsync(self._stream.fileno())
        self._appended = len(self.records)

    @classmethod
    def from_jsonl(cls, path: PathLike) -> "ChangeLog":
        """Load a log.  A torn *trailing* record (crash mid-append) is
        skipped with a warning; corruption anywhere else raises
        :class:`~repro.errors.StorageError`."""
        log = cls()
        lines = Path(path).read_text().splitlines()
        for i, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if any(rest.strip() for rest in lines[i + 1 :]):
                    raise StorageError(
                        f"corrupt change log record at line {i + 1} "
                        f"of {str(path)!r}"
                    ) from None
                warnings.warn(
                    f"change log {str(path)!r}: skipping torn trailing "
                    f"record at line {i + 1}",
                    stacklevel=2,
                )
                break
            log.records.append(record)
        if not log.records:
            raise StorageError(f"empty change log {str(path)!r}")
        log._appended = len(log.records)
        return log

    # -- replay -----------------------------------------------------------------------

    def replay(self) -> SystemHistory:
        """Reconstruct the system history the log recorded."""
        if not self.records or self.records[0]["ts"] is not None:
            raise StorageError("log has no base-state record")
        base = self.records[0]
        db = DatabaseState(
            {name: _decode_item(item) for name, item in base["changes"].items()}
        )
        history = SystemHistory(validate_transaction_time=False)
        for record in self.records[1:]:
            changes = {
                name: _decode_item(item)
                for name, item in record["changes"].items()
            }
            if changes:
                db = db.with_updates(changes)
            events = [
                Event(name, tuple(params)) for name, params in record["events"]
            ]
            history.append(SystemState(db, events, record["ts"]))
        return history

    def __len__(self) -> int:
        return max(0, len(self.records) - 1)
