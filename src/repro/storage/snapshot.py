"""Immutable database states with structural sharing.

A :class:`DatabaseState` maps *database items* (the paper's Section 2:
"names of relations or object classes", plus scalar items such as ``time``
and the items introduced by aggregate rewriting) to values.  States are
immutable; an update produces a new state sharing all unchanged items, so a
history of n states over a database with k items costs O(n * changed), not
O(n * k * |relation|).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.datamodel.relation import Relation
from repro.errors import QueryEvaluationError, UnknownRelationError


class IndexedItem:
    """A family of scalar items indexed by value tuples.

    Section 6.1.1: aggregates with free variables need "multiple database
    items, indexed with different values for the free variables", e.g.
    ``CUM_PRICE(x)``.  Immutable; ``with_entry`` returns a new family.
    """

    __slots__ = ("_entries", "_default")

    def __init__(self, entries: Optional[Mapping[tuple, Any]] = None, default: Any = None):
        self._entries: dict[tuple, Any] = dict(entries or {})
        self._default = default

    def get(self, index: tuple) -> Any:
        return self._entries.get(index, self._default)

    def with_entry(self, index: tuple, value: Any) -> "IndexedItem":
        entries = dict(self._entries)
        entries[index] = value
        return IndexedItem(entries, self._default)

    def indices(self) -> list[tuple]:
        return sorted(self._entries, key=repr)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndexedItem):
            return NotImplemented
        return self._entries == other._entries and self._default == other._default

    def __hash__(self) -> int:
        return hash((frozenset(self._entries.items()), self._default))

    def __repr__(self) -> str:
        return f"IndexedItem({self._entries!r}, default={self._default!r})"


class DatabaseState:
    """An immutable snapshot of all database items.

    Satisfies the :class:`repro.query.evaluator.StateView` protocol, so
    queries evaluate directly against snapshots — including snapshots deep
    inside a history, which is what the reference (offline) PTL semantics
    needs.
    """

    __slots__ = ("_items", "version")

    def __init__(self, items: Mapping[str, Any], version: int = 0):
        self._items = dict(items)
        self.version = version

    # -- StateView protocol --------------------------------------------------

    def relation(self, name: str) -> Relation:
        value = self._items.get(name)
        if not isinstance(value, Relation):
            raise UnknownRelationError(f"no relation named {name!r}")
        return value

    def item(self, name: str, index: tuple = ()) -> Any:
        if name not in self._items:
            raise QueryEvaluationError(f"no database item named {name!r}")
        value = self._items[name]
        if isinstance(value, IndexedItem):
            return value.get(index)
        if index:
            raise QueryEvaluationError(f"item {name!r} is not indexed")
        return value

    def has_relation(self, name: str) -> bool:
        return isinstance(self._items.get(name), Relation)

    def raw_item(self, name: str) -> Any:
        """The stored value, without unwrapping :class:`IndexedItem`."""
        if name not in self._items:
            raise QueryEvaluationError(f"no database item named {name!r}")
        return self._items[name]

    # -- inspection ------------------------------------------------------------

    def has_item(self, name: str) -> bool:
        return name in self._items

    def item_names(self) -> list[str]:
        return sorted(self._items)

    def items_view(self) -> Mapping[str, Any]:
        return dict(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseState):
            return NotImplemented
        return self._items == other._items

    def __repr__(self) -> str:
        return f"DatabaseState(v{self.version}, items={sorted(self._items)})"

    # -- derivation --------------------------------------------------------------

    def with_updates(self, changes: Mapping[str, Any]) -> "DatabaseState":
        """New state with ``changes`` applied (unchanged items shared)."""
        if not changes:
            return self
        items = dict(self._items)
        items.update(changes)
        return DatabaseState(items, self.version + 1)

    def with_indexed_update(self, name: str, index: tuple, value: Any) -> "DatabaseState":
        current = self._items.get(name)
        if not isinstance(current, IndexedItem):
            current = IndexedItem()
        return self.with_updates({name: current.with_entry(index, value)})

    def changed_items(self, previous: "DatabaseState") -> list[str]:
        """Names of items whose value differs from ``previous`` (the delta
        the incremental algorithm looks at)."""
        out = []
        names = set(self._items) | set(previous._items)
        for name in names:
            if self._items.get(name) is previous._items.get(name):
                continue
            if self._items.get(name) != previous._items.get(name):
                out.append(name)
        return sorted(out)
