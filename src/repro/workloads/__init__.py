"""Workload generators: stock traces, sessions, random formulas/histories."""

from repro.workloads.generator import (
    FormulaGenerator,
    random_executed_store,
    random_formula,
    random_future_formula,
    random_history,
    random_pair,
)
from repro.workloads.stock import (
    PAPER_TRACE_FIRING,
    PAPER_TRACE_PRUNED,
    SHARP_INCREASE,
    apply_tick,
    apply_trace,
    dow_jones_trace,
    login_session_events,
    make_stock_db,
    random_walk_trace,
    spike_trace,
    stock_query_registry,
    trace_history,
)

__all__ = [
    "FormulaGenerator",
    "random_formula",
    "random_future_formula",
    "random_executed_store",
    "random_history",
    "random_pair",
    "PAPER_TRACE_FIRING",
    "PAPER_TRACE_PRUNED",
    "SHARP_INCREASE",
    "make_stock_db",
    "apply_tick",
    "apply_trace",
    "random_walk_trace",
    "spike_trace",
    "login_session_events",
    "dow_jones_trace",
    "trace_history",
    "stock_query_registry",
]
