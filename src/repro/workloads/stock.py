"""Stock-market workloads — the paper's running examples, made executable.

Deterministic traces from Section 5 plus seeded generators for the
scalability benchmarks: price ticks (the periodically-run ``update_stocks``
transaction), user login/logout sessions, and Dow-Jones-style index
streams.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

from repro.datamodel import FLOAT, STRING, Schema
from repro.engine import ActiveDatabase
from repro.events.model import user_event

STOCK_SCHEMA = Schema.of(name=STRING, price=FLOAT, company=STRING, category=STRING)

#: Section 5's worked-example history: (price, time) with the trigger
#: firing at the fourth state.
PAPER_TRACE_FIRING = [(10.0, 1), (15.0, 2), (18.0, 5), (25.0, 8)]

#: Section 5's optimization-example history: no firing; after the fourth
#: state the pruned state formula is (x >= 22 & t <= 30).
PAPER_TRACE_PRUNED = [(10.0, 1), (15.0, 2), (18.0, 5), (11.0, 20)]

#: The paper's SHARP-INCREASE condition: the IBM price doubled within 10
#: time units.
SHARP_INCREASE = (
    "[t := time] [x := price(IBM)] "
    "previously (price(IBM) <= 0.5 * x & time >= t - 10)"
)


def trace_history(
    trace: Sequence[tuple[float, int]], name: str = "IBM"
):
    """Build a raw :class:`~repro.history.history.SystemHistory` from a
    (price, timestamp) trace without going through the engine — each state
    is a commit point carrying an ``update_stocks`` event (what the
    evaluator-level benchmarks and tests consume)."""
    from repro.datamodel import Relation
    from repro.events.model import transaction_commit
    from repro.history.history import SystemHistory
    from repro.history.state import SystemState
    from repro.storage.snapshot import DatabaseState

    schema = Schema.of(name=STRING, price=FLOAT)
    history = SystemHistory()
    for i, (price, ts) in enumerate(trace):
        rel = Relation.from_values(schema, [(name, float(price))])
        history.append(
            SystemState(
                DatabaseState({"STOCK": rel}),
                [transaction_commit(i + 1), user_event("update_stocks")],
                ts,
            )
        )
    return history


def stock_query_registry():
    """A standalone registry with the ``price`` query symbol (for
    evaluator-level use without an engine)."""
    from repro.query.subst import QueryRegistry

    reg = QueryRegistry()
    reg.define_text(
        "price",
        ("name",),
        "RETRIEVE (S.price) FROM STOCK S WHERE S.name = $name",
    )
    return reg


def make_stock_db(
    stocks: Sequence[tuple[str, float]] = (("IBM", 10.0),),
    start_time: int = 0,
    metrics=None,
) -> ActiveDatabase:
    """An active database with the STOCK relation and the paper's query
    symbols (``price``, ``overpriced``) registered.  ``metrics`` is passed
    through to :class:`~repro.engine.ActiveDatabase`."""
    adb = ActiveDatabase(start_time=start_time, metrics=metrics)
    adb.create_relation(
        "STOCK",
        STOCK_SCHEMA,
        [(name, price, f"{name} Corp", "tech") for name, price in stocks],
    )
    adb.define_query(
        "price",
        ["name"],
        "RETRIEVE (S.price) FROM STOCK S WHERE S.name = $name",
    )
    adb.define_query(
        "overpriced",
        [],
        "RETRIEVE (S.name) FROM STOCK S WHERE S.price >= 300",
    )
    adb.define_query(
        "stock_names",
        [],
        "RETRIEVE (S.name) FROM STOCK S",
    )
    return adb


def apply_tick(
    adb: ActiveDatabase, name: str, price: float, at_time: Optional[int] = None
) -> None:
    """One ``update_stocks`` transaction setting a stock's price."""
    txn = adb.begin()
    txn.update(
        "STOCK", lambda r: r["name"] == name, lambda r: {"price": float(price)}
    )
    txn.post_event(user_event("update_stocks"))
    txn.commit(at_time)


def apply_trace(
    adb: ActiveDatabase, trace: Iterable[tuple[float, int]], name: str = "IBM"
) -> None:
    for price, ts in trace:
        apply_tick(adb, name, price, at_time=ts)


def random_walk_trace(
    seed: int,
    n: int,
    start_price: float = 50.0,
    start_time: int = 1,
    max_step: float = 3.0,
    dt: tuple[int, int] = (1, 3),
) -> list[tuple[float, int]]:
    """A seeded random-walk price trace of ``n`` ticks (price floors at 1)."""
    rng = random.Random(seed)
    price = start_price
    ts = start_time
    out = []
    for _ in range(n):
        price = max(1.0, price + rng.uniform(-max_step, max_step))
        out.append((round(price, 2), ts))
        ts += rng.randint(*dt)
    return out


def spike_trace(
    n: int,
    base: float = 50.0,
    spike_every: int = 50,
    start_time: int = 1,
) -> list[tuple[float, int]]:
    """A trace that doubles the price every ``spike_every`` ticks —
    guarantees periodic firings of SHARP-INCREASE."""
    out = []
    ts = start_time
    for i in range(n):
        price = base * (2.2 if i % spike_every == spike_every - 1 else 1.0)
        out.append((round(price, 2), ts))
        ts += 2
    return out


def login_session_events(
    seed: int, n_events: int, users: Sequence[str] = ("X", "Y", "Z")
):
    """A seeded stream of (event, dt) user login/logout pairs."""
    rng = random.Random(seed)
    logged_in: set[str] = set()
    out = []
    for _ in range(n_events):
        user = rng.choice(list(users))
        if user in logged_in:
            out.append((user_event("user_logout", user), rng.randint(1, 3)))
            logged_in.discard(user)
        else:
            out.append((user_event("user_login", user), rng.randint(1, 3)))
            logged_in.add(user)
    return out


def dow_jones_trace(
    seed: int, n: int, start: float = 10_000.0, start_time: int = 1
) -> list[tuple[float, int]]:
    """An index-level trace for the 'Dow fell 250 points in 2 hours'
    style conditions (one tick per simulated minute)."""
    rng = random.Random(seed)
    level = start
    out = []
    for i in range(n):
        level = max(100.0, level + rng.gauss(0, 8.0))
        out.append((round(level, 1), start_time + i))
    return out
