"""Random workloads: histories and PTL formulas for property testing.

The Theorem 1 property test ("the algorithm fires the trigger after the
i-th update iff the formula f is satisfied at state s_i") draws random
(formula, history) pairs from these generators and compares the
incremental evaluator against the reference semantics at every position.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.datamodel.relation import Relation
from repro.datamodel.schema import Schema
from repro.datamodel.types import ValueType
from repro.events.model import Event
from repro.history.history import SystemHistory
from repro.history.state import SystemState
from repro.ptl import ast
from repro.query import ast as qast
from repro.storage.snapshot import DatabaseState

#: Event alphabet for random histories/formulas: name -> arity.
EVENT_ALPHABET: dict[str, int] = {"e0": 0, "e1": 1, "e2": 1, "e3": 0}

#: Parameter pool for unary events.
PARAM_POOL = [1, 2, 3, "a", "b"]

#: Scalar item varied along random histories.
ITEM = "V"

_V_QUERY = qast.ItemRef(ITEM)
_TIME_QUERY = qast.ItemRef("time")


def random_history(rng: random.Random, length: int) -> SystemHistory:
    """A history of ``length`` states: each state carries 1-2 events from
    the alphabet and a fresh value of the scalar item V; timestamps advance
    by 1-3 units."""
    history = SystemHistory(validate_transaction_time=False)
    ts = 0
    for _ in range(length):
        ts += rng.randint(1, 3)
        events = []
        for _ in range(rng.randint(1, 2)):
            name = rng.choice(sorted(EVENT_ALPHABET))
            arity = EVENT_ALPHABET[name]
            params = tuple(rng.choice(PARAM_POOL) for _ in range(arity))
            events.append(Event(name, params))
        db = DatabaseState({ITEM: rng.randint(0, 10)})
        history.append(SystemState(db, events, ts))
    return history


class FormulaGenerator:
    """Random PTL formulas over the shared event alphabet and item V.

    Generated formulas are safe by construction: free variables only come
    from event-atom (and executed-atom) argument positions.  Assignment-
    bound variables are drawn from V or time; aggregates and ``executed``
    atoms are optionally included (the latter match rules ``r0``/``r1``
    against whatever execution records the test seeds).
    """

    def __init__(
        self,
        rng: random.Random,
        max_depth: int = 4,
        allow_aggregates: bool = False,
        allow_executed: bool = False,
        allow_windowed_aggregates: bool = False,
    ):
        self.rng = rng
        self.max_depth = max_depth
        self.allow_aggregates = allow_aggregates
        self.allow_executed = allow_executed
        self.allow_windowed_aggregates = allow_windowed_aggregates
        self._var_counter = 0

    def formula(self) -> ast.Formula:
        return self._formula(self.max_depth, scope=())

    # -- internals ------------------------------------------------------------

    def _fresh_var(self, hint: str) -> str:
        self._var_counter += 1
        return f"{hint}{self._var_counter}"

    def _formula(
        self,
        depth: int,
        scope: tuple[str, ...],
        time_scope: tuple[str, ...] = (),
    ) -> ast.Formula:
        # ``time_scope`` tracks assignment variables bound to ``time`` that
        # are still *available* at this position — the evaluator's safety
        # rule resets availability under temporal operators, so windowed
        # aggregates (whose starting formula references such a variable)
        # may only be generated where one is live.
        rng = self.rng
        if depth <= 0:
            return self._atom(scope, time_scope)
        choice = rng.randrange(10)
        if choice <= 2:
            return self._atom(scope, time_scope)
        if choice == 3:
            return ast.Not(self._formula(depth - 1, scope, time_scope))
        if choice == 4:
            return ast.And(
                tuple(
                    self._formula(depth - 1, scope, time_scope)
                    for _ in range(2)
                )
            )
        if choice == 5:
            return ast.Or(
                tuple(
                    self._formula(depth - 1, scope, time_scope)
                    for _ in range(2)
                )
            )
        if choice == 6:
            return ast.Since(
                self._formula(depth - 1, scope),
                self._formula(depth - 1, scope),
            )
        if choice == 7:
            return ast.Lasttime(self._formula(depth - 1, scope))
        if choice == 8:
            op = rng.choice([ast.Previously, ast.ThroughoutPast])
            window = rng.choice([None, None, rng.randint(2, 8)])
            return op(self._formula(depth - 1, scope), window)
        # assignment operator
        var = self._fresh_var("x")
        query = rng.choice([_V_QUERY, _TIME_QUERY])
        new_time_scope = (
            time_scope + (var,) if query is _TIME_QUERY else time_scope
        )
        return ast.Assign(
            var,
            query,
            self._formula(depth - 1, scope + (var,), new_time_scope),
        )

    def _atom(
        self,
        scope: tuple[str, ...],
        time_scope: tuple[str, ...] = (),
    ) -> ast.Formula:
        rng = self.rng
        choice = rng.randrange(8)
        if choice <= 1:
            # event atom, possibly binding a free variable
            name = rng.choice(sorted(EVENT_ALPHABET))
            arity = EVENT_ALPHABET[name]
            args: list[ast.Term] = []
            for _ in range(arity):
                kind = rng.randrange(3)
                if kind == 0:
                    args.append(ast.ConstT(rng.choice(PARAM_POOL)))
                elif kind == 1 and scope:
                    args.append(ast.Var(rng.choice(scope)))
                else:
                    args.append(ast.Var(self._fresh_var("u")))
            return ast.EventAtom(name, tuple(args))
        if choice == 2 and self.allow_aggregates:
            return self._aggregate_atom(time_scope)
        if choice == 3 and self.allow_executed:
            rule = rng.choice(["r0", "r1"])
            if rng.random() < 0.5:
                time_term: ast.Term = ast.Var(self._fresh_var("et"))
            else:
                time_term = ast.ConstT(rng.randint(0, 20))
            args: tuple[ast.Term, ...] = ()
            if rng.random() < 0.5:
                args = (
                    ast.Var(self._fresh_var("ep"))
                    if rng.random() < 0.5
                    else ast.ConstT(rng.choice(PARAM_POOL)),
                )
            return ast.ExecutedAtom(rule, args, time_term)
        if choice == 3:
            return rng.choice([ast.TRUE, ast.FALSE])
        # comparison
        op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
        return ast.Comparison(op, self._term(scope), self._term(scope))

    def _term(self, scope: tuple[str, ...], depth: int = 1) -> ast.Term:
        rng = self.rng
        choice = rng.randrange(6)
        if choice == 0:
            return ast.ConstT(rng.randint(0, 10))
        if choice == 1 and scope:
            return ast.Var(rng.choice(scope))
        if choice == 2:
            return ast.QueryT(_V_QUERY)
        if choice == 3:
            return ast.QueryT(_TIME_QUERY)
        if depth > 0:
            op = rng.choice(["+", "-", "*"])
            return ast.FuncT(
                op, (self._term(scope, depth - 1), self._term(scope, depth - 1))
            )
        return ast.ConstT(rng.randint(0, 10))

    def _aggregate_atom(self, time_scope: tuple[str, ...] = ()) -> ast.Formula:
        rng = self.rng
        func = rng.choice(["sum", "count", "avg", "min", "max"])
        if (
            self.allow_windowed_aggregates
            and time_scope
            and rng.random() < 0.5
        ):
            # moving-window aggregate (Section 6's hourly average): the
            # starting formula references an outer time variable, so the
            # window slides with the current state
            start: ast.Formula = ast.Comparison(
                ">=",
                ast.QueryT(_TIME_QUERY),
                ast.FuncT(
                    "-",
                    (
                        ast.Var(rng.choice(time_scope)),
                        ast.ConstT(rng.randint(2, 8)),
                    ),
                ),
            )
        else:
            start = ast.EventAtom(rng.choice(["e0", "e3"]))
        sample = rng.choice(
            [
                ast.EventAtom(rng.choice(["e0", "e3"])),
                ast.TRUE,
            ]
        )
        agg = ast.AggT(func, _V_QUERY, start, sample)
        return ast.Comparison(
            rng.choice(["<", "<=", ">", ">="]),
            agg,
            ast.ConstT(rng.randint(0, 30)),
        )


class BoundedFormulaGenerator(FormulaGenerator):
    """Random formulas built only from *bounded* temporal operators —
    ``lasttime`` and windowed ``previously``/``throughout_past`` (never
    unbounded ``since``/``previously``, never aggregates).

    Every such formula keeps only a bounded slice of the past, so under
    the Section 5 optimization the incremental evaluator's state size must
    stay bounded along any history — the property the bounded-memory tests
    assert through the ``evaluator_state_size`` gauges.
    """

    def __init__(self, rng: random.Random, max_depth: int = 3):
        super().__init__(
            rng, max_depth, allow_aggregates=False, allow_executed=False
        )

    def _formula(
        self,
        depth: int,
        scope: tuple[str, ...],
        time_scope: tuple[str, ...] = (),
    ) -> ast.Formula:
        rng = self.rng
        if depth <= 0:
            return self._atom(scope, time_scope)
        choice = rng.randrange(9)
        if choice <= 1:
            return self._atom(scope, time_scope)
        if choice == 2:
            return ast.Not(self._formula(depth - 1, scope, time_scope))
        if choice == 3:
            return ast.And(
                tuple(
                    self._formula(depth - 1, scope, time_scope)
                    for _ in range(2)
                )
            )
        if choice == 4:
            return ast.Or(
                tuple(
                    self._formula(depth - 1, scope, time_scope)
                    for _ in range(2)
                )
            )
        if choice == 5:
            return ast.Lasttime(self._formula(depth - 1, scope))
        if choice in (6, 7):
            op = rng.choice([ast.Previously, ast.ThroughoutPast])
            return op(self._formula(depth - 1, scope), rng.randint(2, 8))
        var = self._fresh_var("x")
        query = rng.choice([_V_QUERY, _TIME_QUERY])
        new_time_scope = (
            time_scope + (var,) if query is _TIME_QUERY else time_scope
        )
        return ast.Assign(
            var,
            query,
            self._formula(depth - 1, scope + (var,), new_time_scope),
        )


def contains_aggregate(formula: ast.Formula) -> bool:
    """True iff the formula has at least one temporal-aggregate term."""

    def term_has(term: ast.Term) -> bool:
        if isinstance(term, ast.AggT):
            return True
        if isinstance(term, ast.FuncT):
            return any(term_has(a) for a in term.args)
        return False

    def rec(f: ast.Formula) -> bool:
        if isinstance(f, ast.Comparison):
            return term_has(f.left) or term_has(f.right)
        if isinstance(f, ast.Not):
            return rec(f.operand)
        if isinstance(f, (ast.And, ast.Or)):
            return any(rec(c) for c in f.operands)
        if isinstance(f, ast.Since):
            return rec(f.lhs) or rec(f.rhs)
        if isinstance(f, (ast.Lasttime, ast.Previously, ast.ThroughoutPast)):
            return rec(f.operand)
        if isinstance(f, ast.Assign):
            return rec(f.body)
        return False

    return rec(formula)


def random_formula(
    seed: int, max_depth: int = 4, allow_aggregates: bool = False
) -> ast.Formula:
    rng = random.Random(seed)
    return FormulaGenerator(rng, max_depth, allow_aggregates).formula()


def random_pair(
    seed: int,
    length: int = 12,
    max_depth: int = 4,
    allow_aggregates: bool = False,
    allow_executed: bool = False,
):
    """A (formula, history) pair from one seed."""
    rng = random.Random(seed)
    gen = FormulaGenerator(rng, max_depth, allow_aggregates, allow_executed)
    formula = gen.formula()
    history = random_history(rng, length)
    return formula, history


def random_bounded_pair(seed: int, length: int = 40, max_depth: int = 3):
    """A (bounded-operator formula, history) pair from one seed — the
    input for the bounded-memory property tests."""
    rng = random.Random(seed)
    gen = BoundedFormulaGenerator(rng, max_depth)
    formula = gen.formula()
    history = random_history(rng, length)
    return formula, history


def random_aggregate_pair(
    seed: int,
    length: int = 8,
    max_depth: int = 2,
    windowed: bool = True,
):
    """Like :func:`random_pair` with aggregates enabled, but guaranteed to
    contain at least one temporal-aggregate term (random drawing alone
    leaves most formulas aggregate-free).  With ``windowed=True`` the
    generator may also produce moving-window aggregates whose starting
    formula references an outer time variable."""
    rng = random.Random(seed)
    gen = FormulaGenerator(
        rng,
        max_depth,
        allow_aggregates=True,
        allow_windowed_aggregates=windowed,
    )
    formula = gen.formula()
    if not contains_aggregate(formula):
        # conjoin/disjoin a fresh aggregate atom at the top
        atom = gen._aggregate_atom()
        formula = (
            ast.And((formula, atom))
            if rng.random() < 0.5
            else ast.Or((formula, atom))
        )
    history = random_history(rng, length)
    return formula, history


def random_future_formula(seed: int, max_depth: int = 3):
    """A random future formula (repro.ptl.future) whose atoms are ground
    past-PTL formulas over the shared alphabet — for monitor-vs-reference
    property tests."""
    from repro.ptl import future as fut

    rng = random.Random(seed ^ 0xF00D)

    def atom():
        kind = rng.randrange(3)
        if kind == 0:
            return fut.Atom(ast.EventAtom(rng.choice(sorted(EVENT_ALPHABET))))
        if kind == 1:
            return fut.Atom(
                ast.Comparison(
                    rng.choice(["<", "<=", ">", ">=", "=", "!="]),
                    ast.QueryT(_V_QUERY),
                    ast.ConstT(rng.randint(0, 10)),
                )
            )
        return fut.Atom(
            ast.Previously(ast.EventAtom(rng.choice(sorted(EVENT_ALPHABET))))
        )

    def rec(depth):
        if depth <= 0:
            return atom()
        choice = rng.randrange(8)
        if choice == 0:
            return fut.fnot(rec(depth - 1))
        if choice == 1:
            return fut.fand([rec(depth - 1), rec(depth - 1)])
        if choice == 2:
            return fut.for_([rec(depth - 1), rec(depth - 1)])
        if choice == 3:
            return fut.Next(rec(depth - 1))
        if choice == 4:
            return fut.Until(rec(depth - 1), rec(depth - 1))
        if choice == 5:
            window = rng.choice([None, rng.randint(2, 10)])
            return fut.Eventually(rec(depth - 1), window)
        if choice == 6:
            window = rng.choice([None, rng.randint(2, 10)])
            return fut.Always(rec(depth - 1), window)
        return atom()

    return rec(max_depth)


def random_executed_store(seed: int):
    """An execution store with a few r0/r1 records (0- and 1-ary) whose
    times fall inside the timestamp range of :func:`random_history`."""
    from repro.ptl.context import ExecutedStore

    rng = random.Random(seed ^ 0xE0E0)
    store = ExecutedStore()
    for _ in range(rng.randint(2, 6)):
        rule = rng.choice(["r0", "r1"])
        params = () if rng.random() < 0.5 else (rng.choice(PARAM_POOL),)
        store.record(rule, params, rng.randint(0, 20))
    return store
