"""Multi-tenant asyncio serving layer (see :mod:`repro.serve.server`).

Hosts many isolated per-tenant :class:`~repro.engine.ActiveDatabase`
instances behind a newline-delimited JSON session protocol: sessions
stream transactions in, firing/IC-veto notifications stream out, and
admitted work drains through the engine's WAL group commit.
"""

from repro.serve.admission import AdmissionController
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    compile_statements,
    decode_frame,
    encode_frame,
)
from repro.serve.server import ReproServer, Session
from repro.serve.tenant import (
    StockProfile,
    Tenant,
    TenantProfile,
    TenantRegistry,
    default_manager,
)

__all__ = [
    "AdmissionController",
    "DEFAULT_MAX_FRAME",
    "PROTOCOL_VERSION",
    "ReproServer",
    "Session",
    "StockProfile",
    "Tenant",
    "TenantProfile",
    "TenantRegistry",
    "compile_statements",
    "decode_frame",
    "default_manager",
    "encode_frame",
]
