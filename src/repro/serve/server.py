"""Asyncio multi-tenant server over the newline-delimited JSON protocol.

:class:`ReproServer` hosts many isolated tenant databases in one
process: each connection is a :class:`Session` streaming requests in and
replies/notifications out; the :class:`~repro.serve.tenant.TenantRegistry`
lazily opens (or crash-recovers) tenants under namespaced durable
directories; the :class:`~repro.serve.admission.AdmissionController`
bounds per-tenant ingest and drains admitted transactions through the
engine's WAL group commit.  A background sweeper evicts idle tenants
checkpoint-then-close.

The server listens on TCP (``host``/``port``) or a Unix socket
(``unix_path``) — the tests and the benchmark use Unix sockets so runs
never depend on free ports.  Everything runs on one event loop: tenant
engines are plain synchronous code, so per-tenant work is serialized by
construction and the cross-tenant isolation oracle (served firings ==
standalone engines) holds without any tenant-level locking beyond the
per-tenant drain/evict lock.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from typing import Any, Optional

from repro.errors import (
    ProtocolError,
    StorageDegradedError,
    TenantError,
)
from repro.obs.metrics import as_registry
from repro.query.evaluator import eval_query
from repro.query.parser import parse_query
from repro.serve.admission import AdmissionController
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    ERR_DEGRADED,
    ERR_INTERNAL,
    ERR_INVALID,
    ERR_OVERSIZED,
    ERR_QUERY,
    ERR_TENANT_ALREADY_OPEN,
    ERR_TENANT_BUSY,
    ERR_TENANT_NOT_OPEN,
    PROTOCOL_VERSION,
    compile_statements,
    decode_frame,
    encode_frame,
    error_reply,
    firing_notification,
    ok_reply,
    veto_notification,
)
from repro.serve.tenant import Tenant, TenantProfile, TenantRegistry

_session_tokens = itertools.count(1)


class Session:
    """One connected client: a reader loop plus ordered writes."""

    def __init__(self, server: "ReproServer", reader, writer):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.token = next(_session_tokens)
        #: Tenant ids this session has opened (and is notified about).
        self.tenants: set[str] = set()
        self._write_lock = asyncio.Lock()
        self._tasks: set[asyncio.Task] = set()
        self.closed = False

    # -- writing -----------------------------------------------------------

    async def send(self, payload: dict) -> None:
        if self.closed:
            return
        data = encode_frame(payload)
        async with self._write_lock:
            if self.closed:
                return
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                self.closed = True

    def post(self, payload: dict) -> None:
        """Queue a frame from synchronous context (notification pump)."""
        if not self.closed:
            self._spawn(self.send(payload))

    def _spawn(self, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- reading -----------------------------------------------------------

    async def run(self) -> None:
        while True:
            try:
                line = await self.reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # The frame outgrew the stream limit mid-line; NDJSON
                # cannot resynchronise, so reply typed and close.
                await self.send(
                    error_reply(
                        ProtocolError(
                            ERR_OVERSIZED,
                            f"frame exceeds the "
                            f"{self.server.max_frame}-byte limit",
                            max_frame=self.server.max_frame,
                        )
                    )
                )
                break
            except (ConnectionError, asyncio.IncompleteReadError):
                break
            if not line:
                break
            await self.dispatch_line(line)
            if self.closed:
                break

    async def dispatch_line(self, line: bytes) -> None:
        server = self.server
        try:
            frame = decode_frame(line, server.max_frame)
        except ProtocolError as exc:
            server.count_error(exc.type)
            # Echo the client's frame id when the line parsed as an
            # object (invalid_request / unknown_op): pipelined clients
            # correlate replies by id.
            frame_id = None
            try:
                parsed = json.loads(line)
                if isinstance(parsed, dict):
                    frame_id = parsed.get("id")
            except Exception:
                pass
            await self.send(error_reply(exc, frame_id))
            if exc.type == ERR_OVERSIZED:
                self.closed = True
            return
        frame_id = frame.get("id")
        op = frame["op"]
        server.metrics.counter("serve_requests_total", op=op).inc()
        try:
            await getattr(self, f"op_{op}")(frame, frame_id)
        except ProtocolError as exc:
            server.count_error(exc.type)
            await self.send(error_reply(exc, frame_id))
        except StorageDegradedError as exc:
            server.count_error(ERR_DEGRADED)
            await self.send(
                error_reply(
                    ProtocolError(ERR_DEGRADED, str(exc), reason=exc.reason),
                    frame_id,
                )
            )
        except TenantError as exc:
            server.count_error(ERR_TENANT_BUSY)
            await self.send(
                error_reply(
                    ProtocolError(ERR_TENANT_BUSY, str(exc)), frame_id
                )
            )
        except Exception as exc:  # noqa: BLE001 — typed reply, keep serving
            server.count_error(ERR_INTERNAL)
            await self.send(
                error_reply(
                    ProtocolError(
                        ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                    ),
                    frame_id,
                )
            )
        return

    # -- request handlers --------------------------------------------------

    async def op_hello(self, frame: dict, frame_id) -> None:
        await self.send(
            ok_reply(
                frame_id,
                server="repro-serve",
                protocol=PROTOCOL_VERSION,
                max_frame=self.server.max_frame,
                profile=self.server.registry.profile.name,
            )
        )

    async def op_ping(self, frame: dict, frame_id) -> None:
        await self.send(ok_reply(frame_id, pong=True))

    def _tenant_id(self, frame: dict) -> str:
        tenant_id = frame.get("tenant")
        return TenantRegistry.validate_id(tenant_id)

    async def _open_tenant(self, frame: dict) -> Tenant:
        """Resolve a tenant this session opened (reopening it
        transparently if it was evicted in between)."""
        tenant_id = self._tenant_id(frame)
        if tenant_id not in self.tenants:
            raise ProtocolError(
                ERR_TENANT_NOT_OPEN,
                f"tenant {tenant_id!r} is not open on this session",
                tenant=tenant_id,
            )
        return await self.server.registry.get(tenant_id)

    async def op_open(self, frame: dict, frame_id) -> None:
        tenant_id = self._tenant_id(frame)
        if tenant_id in self.tenants:
            raise ProtocolError(
                ERR_TENANT_ALREADY_OPEN,
                f"tenant {tenant_id!r} is already open on this session",
                tenant=tenant_id,
            )
        tenant = await self.server.registry.get(tenant_id)
        self.tenants.add(tenant_id)
        self.server.registry.subscribe(tenant_id, self.token, self.post)
        await self.send(
            ok_reply(
                frame_id,
                tenant=tenant_id,
                recovered=tenant.recovered,
                state_count=tenant.engine.state_count,
                clock=tenant.engine.now,
            )
        )

    async def op_close(self, frame: dict, frame_id) -> None:
        tenant_id = self._tenant_id(frame)
        if tenant_id not in self.tenants:
            raise ProtocolError(
                ERR_TENANT_NOT_OPEN,
                f"tenant {tenant_id!r} is not open on this session",
                tenant=tenant_id,
            )
        self.tenants.discard(tenant_id)
        self.server.registry.unsubscribe(tenant_id, self.token)
        await self.send(ok_reply(frame_id, tenant=tenant_id, closed=True))

    async def op_txn(self, frame: dict, frame_id) -> None:
        tenant = await self._open_tenant(frame)
        work = compile_statements(frame.get("stmts"))
        started = time.perf_counter()
        future = self.server.admission.admit(tenant, work)
        self._spawn(self._txn_reply(tenant, frame_id, future, started))

    async def _txn_reply(
        self, tenant: Tenant, frame_id, future, started: float
    ) -> None:
        try:
            txn = await future
        except ProtocolError as exc:
            self.server.count_error(exc.type)
            await self.send(error_reply(exc, frame_id))
            return
        except Exception as exc:  # noqa: BLE001
            self.server.count_error(ERR_INTERNAL)
            await self.send(
                error_reply(
                    ProtocolError(
                        ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                    ),
                    frame_id,
                )
            )
            return
        from repro.storage.transactions import TxnStatus

        committed = txn.status is TxnStatus.COMMITTED
        self.server.metrics.histogram("serve_txn_latency_seconds").observe(
            time.perf_counter() - started
        )
        fields: dict[str, Any] = {
            "tenant": tenant.id,
            "committed": committed,
            "txn": txn.id,
            "state_index": getattr(txn, "serve_state_index", None),
        }
        if not committed:
            vetoed_by = tenant.take_veto_rules(txn.id)
            fields["vetoed_by"] = vetoed_by
            self.server.metrics.counter(
                "serve_tenant_aborts_total", tenant=tenant.id
            ).inc()
        await self.send(ok_reply(frame_id, **fields))

    async def op_query(self, frame: dict, frame_id) -> None:
        from repro.datamodel.relation import Relation

        tenant = await self._open_tenant(frame)
        text = frame.get("text")
        if not isinstance(text, str):
            raise ProtocolError(ERR_INVALID, '"text" must be a string')
        params = frame.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError(ERR_INVALID, '"params" must be an object')
        try:
            result = eval_query(
                parse_query(text), tenant.engine.state, params
            )
        except Exception as exc:  # noqa: BLE001 — parse/eval both typed
            raise ProtocolError(
                ERR_QUERY, f"{type(exc).__name__}: {exc}"
            ) from exc
        if isinstance(result, Relation):
            await self.send(
                ok_reply(
                    frame_id,
                    rows=[list(row.values) for row in result.sorted_rows()],
                )
            )
        else:
            await self.send(ok_reply(frame_id, value=result))

    async def op_stats(self, frame: dict, frame_id) -> None:
        server = self.server
        fields: dict[str, Any] = {
            "tenants_resident": len(server.registry.resident),
            "sessions": server.sessions_active,
        }
        tenant_id = frame.get("tenant")
        if tenant_id is not None:
            TenantRegistry.validate_id(tenant_id)
            tenant = server.registry.resident_tenant(tenant_id)
            if tenant is None:
                fields["tenant"] = {"id": tenant_id, "resident": False}
            else:
                fields["tenant"] = {
                    "id": tenant_id,
                    "resident": True,
                    "recovered": tenant.recovered,
                    "state_count": tenant.engine.state_count,
                    "clock": tenant.engine.now,
                    "queue_depth": tenant.engine.queue_depth,
                    "firings": len(tenant.manager.firings),
                    "rules": sorted(tenant.manager.rule_names()),
                }
        await self.send(ok_reply(frame_id, **fields))

    async def op_evict(self, frame: dict, frame_id) -> None:
        tenant_id = self._tenant_id(frame)
        evicted = await self.server.registry.evict(tenant_id, reason="admin")
        await self.send(ok_reply(frame_id, tenant=tenant_id, evicted=evicted))

    # -- teardown ----------------------------------------------------------

    def detach(self) -> None:
        self.closed = True
        for tenant_id in self.tenants:
            self.server.registry.unsubscribe(tenant_id, self.token)
        self.tenants.clear()
        for task in list(self._tasks):
            task.cancel()


class ReproServer:
    """Long-running asyncio server hosting many tenant databases."""

    def __init__(
        self,
        root,
        profile: TenantProfile,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        metrics=True,
        max_frame: int = DEFAULT_MAX_FRAME,
        max_queue: int = 256,
        max_batch: int = 64,
        max_resident: int = 64,
        idle_seconds: Optional[float] = None,
        sweep_interval: float = 0.5,
        clock=time.monotonic,
        injector=None,
        fsync: bool = True,
        tier_budget: Optional[int] = None,
        tenant_metrics: bool = False,
    ):
        self.metrics = as_registry(metrics)
        self.max_frame = max_frame
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.sweep_interval = sweep_interval
        self.registry = TenantRegistry(
            root,
            profile,
            metrics=self.metrics,
            max_resident=max_resident,
            idle_seconds=idle_seconds,
            clock=clock,
            injector=injector,
            fsync=fsync,
            tier_budget=tier_budget,
            tenant_metrics=tenant_metrics,
        )
        self.admission = AdmissionController(
            metrics=self.metrics,
            max_queue=max_queue,
            max_batch=max_batch,
            on_drained=self.pump,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweeper: Optional[asyncio.Task] = None
        self._sessions: set[Session] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._m_sessions = self.metrics.gauge("serve_sessions_active")
        self._m_connections = self.metrics.counter("serve_connections_total")

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "ReproServer":
        # +2: a frame of exactly max_frame bytes plus its newline must
        # pass the stream limit and be refused by decode_frame instead
        # (typed reply) — only *larger* frames hit the framing hard stop.
        limit = self.max_frame + 2
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connect, path=self.unix_path, limit=limit
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connect, self.host, self.port, limit=limit
            )
            self.port = self._server.sockets[0].getsockname()[1]
        if self.sweep_interval:
            self._sweeper = asyncio.get_running_loop().create_task(
                self._sweep()
            )
        return self

    @property
    def address(self):
        if self.unix_path is not None:
            return self.unix_path
        return (self.host, self.port)

    @property
    def sessions_active(self) -> int:
        return len(self._sessions)

    async def stop(self) -> None:
        """Orderly shutdown: stop accepting, drop sessions, evict every
        tenant checkpoint-then-close (all state durable)."""
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for session in list(self._sessions):
            session.detach()
            try:
                session.writer.close()
            except Exception:
                pass
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        self._sessions.clear()
        self._m_sessions.set(0)
        await self.registry.close_all()

    # -- connections -------------------------------------------------------

    async def _on_connect(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        session = Session(self, reader, writer)
        self._sessions.add(session)
        self._m_connections.inc()
        self._m_sessions.set(len(self._sessions))
        try:
            await session.run()
        except asyncio.CancelledError:
            # Server shutdown cancelled the reader loop; asyncio's stream
            # protocol would log the propagated CancelledError as an
            # "exception never retrieved" — swallow it, teardown follows.
            pass
        finally:
            session.detach()
            self._sessions.discard(session)
            self._m_sessions.set(len(self._sessions))
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def count_error(self, error_type: str) -> None:
        self.metrics.counter("serve_errors_total", type=error_type).inc()

    # -- notifications -----------------------------------------------------

    def pump(self, tenant: Tenant) -> None:
        """Push fresh firings and IC vetoes to the tenant's subscribers;
        runs after every drained batch, before transaction replies, and
        labels every pushed frame with the tenant id."""
        subscribers = self.registry.subscribers_of(tenant.id)
        for record in tenant.new_firings():
            self.metrics.counter(
                "serve_notifications_total", kind="firing"
            ).inc()
            self.metrics.counter(
                "serve_tenant_firings_total", tenant=tenant.id
            ).inc()
            frame = firing_notification(tenant.id, record)
            for post in subscribers:
                post(frame)
        for event in tenant.new_vetoes():
            self.metrics.counter(
                "serve_notifications_total", kind="ic_veto"
            ).inc()
            frame = veto_notification(tenant.id, event)
            for post in subscribers:
                post(frame)

    # -- idle eviction -----------------------------------------------------

    async def _sweep(self) -> None:
        while True:
            await asyncio.sleep(self.sweep_interval)
            for tenant_id in self.registry.idle_candidates():
                try:
                    await self.registry.evict(tenant_id, reason="idle")
                except TenantError:
                    continue  # raced new work; next sweep retries
