"""Tenant registry: lazily opened, evictable per-tenant databases.

Each tenant is one isolated :class:`~repro.engine.ActiveDatabase` plus
its rule manager, living under a namespaced durable directory::

    <root>/tenants/<tenant-id>/
        wal.jsonl          write-ahead log (states durable before actions)
        checkpoint.json    atomic engine + manager checkpoint
        segments/          tiered-history spill segments (optional)

A :class:`TenantProfile` describes how a tenant database is laid out —
its catalog (relations, items, named queries) and its rule base.  The
registry opens tenants lazily on first use: a fresh directory gets the
profile's catalog and rules on an empty engine; a directory with durable
state is rebuilt through :class:`~repro.recovery.manager.RecoveryManager`
(checkpoint + WAL-tail replay), then the WAL re-attaches and appends.

Idle tenants are evicted *checkpoint-then-close*: flush the manager,
write an atomic checkpoint, detach the WAL and the temporal component,
release the memory.  The next open recovers the identical temporal state
— the eviction/recovery tests assert bit-identical manager state across
the round trip, and a crash mid-eviction-checkpoint leaves the previous
checkpoint (and the WAL) intact for the next open.
"""

from __future__ import annotations

import asyncio
import os
import re
import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro.engine import ActiveDatabase
from repro.errors import ProtocolError, TenantError
from repro.obs.metrics import as_registry
from repro.obs.trace import TraceSink
from repro.recovery.manager import RecoveryManager
from repro.serve.protocol import ERR_INVALID_TENANT

PathLike = Union[str, Path]

#: Subdirectory of the serving root holding one directory per tenant.
TENANT_DIR = "tenants"

#: Tenant ids are path components: one safe segment, no traversal.
TENANT_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


def default_manager(engine, trace=None, shards: Optional[int] = None, **kw):
    """The manager a profile attaches unless it has reasons of its own.

    Honors ``REPRO_SHARDS`` exactly like the facade — the serving CI job
    reruns the whole suite on the sharded backend by exporting it — but
    on the *thread* runtime: a server hosting many tenants must not fork
    a process pool per tenant."""
    if shards is None:
        env = os.environ.get("REPRO_SHARDS")
        shards = int(env) if env else None
    if shards:
        from repro.parallel import ShardedRuleManager

        return ShardedRuleManager(
            engine, shards=shards, runtime="thread", trace=trace, **kw
        )
    return engine.rule_manager(trace=trace, **kw)


class TenantProfile:
    """How every tenant database of one server is laid out.

    ``catalog`` runs once on a *fresh* engine (recovery restores the
    catalog from the checkpoint/WAL base record instead); ``rules`` runs
    on every open — fresh or recovered — and returns the rule manager,
    mirroring the recovery contract: rule code is never serialized, the
    profile re-registers it and checkpointed evaluator state is verified
    against it."""

    name = "profile"

    def catalog(self, engine) -> None:
        raise NotImplementedError

    def rules(self, engine, trace=None):
        raise NotImplementedError


class StockProfile(TenantProfile):
    """The paper's stock-monitor workload as a tenant layout: one STOCK
    relation, the ``price`` query, the SHARP-INCREASE trigger, and a
    positive-price integrity constraint."""

    name = "stock"

    def catalog(self, engine) -> None:
        from repro.workloads.stock import STOCK_SCHEMA

        engine.create_relation(
            "STOCK", STOCK_SCHEMA, [("IBM", 50.0, "IBM Corp", "tech")]
        )
        engine.define_query(
            "price",
            ["name"],
            "RETRIEVE (S.price) FROM STOCK S WHERE S.name = $name",
        )

    def rules(self, engine, trace=None):
        from repro.rules.actions import RecordingAction
        from repro.workloads import SHARP_INCREASE

        manager = default_manager(engine, trace=trace)
        manager.add_trigger(
            "sharp_increase", SHARP_INCREASE, RecordingAction()
        )
        manager.add_integrity_constraint(
            "positive_price", "price(IBM) >= 0"
        )
        return manager


class Tenant:
    """One resident tenant: engine + manager + durable directory."""

    def __init__(
        self,
        tenant_id: str,
        directory: Path,
        engine: ActiveDatabase,
        manager,
        recovery: RecoveryManager,
        trace: TraceSink,
        recovered: bool,
    ):
        self.id = tenant_id
        self.directory = directory
        self.engine = engine
        self.manager = manager
        self.recovery = recovery
        self.trace = trace
        self.recovered = recovered
        #: Serializes drains, eviction, and admin ops on this tenant.
        self.lock = asyncio.Lock()
        #: Reply futures for enqueued-but-undrained transactions, FIFO —
        #: aligned with the engine's ingest queue.
        self.pending_futures: list = []
        #: Wall-clock (registry clock) of the last session activity.
        self.last_active: float = 0.0
        #: True while an admission drain task is scheduled.
        self.draining = False
        #: Watermarks for the notification pump — start past anything a
        #: recovery replay reproduced, so reopening a tenant never
        #: re-notifies its durable history.
        self.notified_firings = len(manager.firings)
        self.notified_trace_seq = trace.emitted
        #: Veto reasons per txn id, filled by the notification pump and
        #: read by transaction replies (bounded: pruned as replies go out).
        self.veto_rules: dict[int, list[str]] = {}

    @property
    def state_count(self) -> int:
        return self.engine.state_count

    def touch(self, now: float) -> None:
        self.last_active = now

    def new_firings(self):
        firings = self.manager.firings
        fresh = firings[self.notified_firings:]
        self.notified_firings = len(firings)
        return fresh

    def new_vetoes(self):
        """Fresh ``ic_violation`` trace events since the last pump; also
        updates :attr:`veto_rules` for transaction replies."""
        fresh = [
            e
            for e in self.trace.events("ic_violation")
            if e.seq >= self.notified_trace_seq
        ]
        self.notified_trace_seq = self.trace.emitted
        for event in fresh:
            txn_id = event.data.get("txn")
            if txn_id is not None:
                self.veto_rules.setdefault(txn_id, []).append(
                    event.data.get("rule")
                )
        return fresh

    def take_veto_rules(self, txn_id: int) -> list[str]:
        return self.veto_rules.pop(txn_id, [])


class TenantRegistry:
    """Opens, caches, and evicts tenants under one serving root."""

    def __init__(
        self,
        root: PathLike,
        profile: TenantProfile,
        metrics=None,
        max_resident: int = 64,
        idle_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        injector=None,
        fsync: bool = True,
        tier_budget: Optional[int] = None,
        tenant_metrics: bool = False,
    ):
        """``metrics`` is the *server* registry: per-tenant rollups land
        there under ``tenant=<id>`` labels.  ``tenant_metrics=True``
        additionally gives each tenant engine its own isolated
        :class:`~repro.obs.metrics.MetricsRegistry` (engine metric names
        are unlabelled, so tenants must not share one).

        ``tier_budget`` (bytes) puts each tenant's history behind the
        memory governor, spilling cold states to the tenant's
        ``segments/`` directory (see :mod:`repro.history.spill`)."""
        self.root = Path(root)
        self.profile = profile
        self.metrics = as_registry(metrics)
        self.max_resident = max(1, max_resident)
        self.idle_seconds = idle_seconds
        self.clock = clock
        self.injector = injector
        self.fsync = fsync
        self.tier_budget = tier_budget
        self.tenant_metrics = tenant_metrics
        self._resident: dict[str, Tenant] = {}
        self._open_locks: dict[str, asyncio.Lock] = {}
        #: Per-tenant notification subscribers, keyed by tenant id then an
        #: opaque subscriber token — kept *outside* the Tenant so
        #: subscriptions survive evict/reopen cycles transparently.
        self.subscribers: dict[str, dict[int, Callable]] = {}
        self._m_resident = self.metrics.gauge("serve_tenants_resident")

    # -- identity ----------------------------------------------------------

    @staticmethod
    def validate_id(tenant_id) -> str:
        if not isinstance(tenant_id, str) or not TENANT_ID_RE.match(
            tenant_id
        ):
            raise ProtocolError(
                ERR_INVALID_TENANT,
                f"invalid tenant id {tenant_id!r}: want 1-64 chars of "
                "[A-Za-z0-9_.-] starting alphanumeric",
            )
        return tenant_id

    def directory(self, tenant_id: str) -> Path:
        return self.root / TENANT_DIR / tenant_id

    # -- open/resolve ------------------------------------------------------

    @property
    def resident(self) -> list[str]:
        return sorted(self._resident)

    def resident_tenant(self, tenant_id: str) -> Optional[Tenant]:
        return self._resident.get(tenant_id)

    async def get(self, tenant_id: str) -> Tenant:
        """Resolve (lazily opening or recovering) a tenant.

        Concurrent first opens of the same tenant race through one
        per-id lock: exactly one open happens, the rest share it."""
        self.validate_id(tenant_id)
        tenant = self._resident.get(tenant_id)
        if tenant is not None:
            tenant.touch(self.clock())
            return tenant
        lock = self._open_locks.setdefault(tenant_id, asyncio.Lock())
        async with lock:
            tenant = self._resident.get(tenant_id)
            if tenant is None:
                tenant = self._open(tenant_id)
                self._resident[tenant_id] = tenant
                self._m_resident.set(len(self._resident))
            tenant.touch(self.clock())
            return tenant

    def _open(self, tenant_id: str) -> Tenant:
        directory = self.directory(tenant_id)
        directory.mkdir(parents=True, exist_ok=True)
        recovery = RecoveryManager(
            directory, fsync=self.fsync, injector=self.injector
        )
        trace = TraceSink()
        engine_metrics = True if self.tenant_metrics else None
        has_durable = (
            recovery.checkpoint_path.exists()
            or (
                recovery.wal_path.exists()
                and recovery.wal_path.stat().st_size > 0
            )
        )
        if has_durable:
            report = recovery.recover(
                setup=lambda eng: self.profile.rules(eng, trace=trace),
                metrics=engine_metrics,
            )
            engine, manager = report.engine, report.manager
            if manager is None:
                raise TenantError(
                    f"profile {self.profile.name!r} returned no manager "
                    f"for tenant {tenant_id!r}"
                )
            self.metrics.counter(
                "serve_tenant_recoveries_total", tenant=tenant_id
            ).inc()
        else:
            engine = ActiveDatabase(metrics=engine_metrics)
            self.profile.catalog(engine)
            manager = self.profile.rules(engine, trace=trace)
        if self.tier_budget is not None and getattr(
            engine, "tiered", None
        ) is None:
            from repro.history.spill import attach_tiered_history

            attach_tiered_history(
                engine,
                directory / "segments",
                budget_bytes=self.tier_budget,
                manager=manager,
                injector=self.injector,
            )
        recovery.start(engine)
        self.metrics.counter(
            "serve_tenant_opens_total", tenant=tenant_id
        ).inc()
        return Tenant(
            tenant_id,
            directory,
            engine,
            manager,
            recovery,
            trace,
            recovered=has_durable,
        )

    # -- eviction ----------------------------------------------------------

    async def evict(self, tenant_id: str, reason: str = "idle") -> bool:
        """Checkpoint-then-close ``tenant_id``; returns False when it was
        not resident.  On *any* failure — including an injected crash mid
        eviction-checkpoint — the tenant is unconditionally deregistered
        and its WAL closed, so the next open recovers from the last
        durable point instead of touching half-closed state."""
        tenant = self._resident.get(tenant_id)
        if tenant is None:
            return False
        async with tenant.lock:
            if tenant.pending_futures or tenant.engine.queue_depth:
                raise TenantError(
                    f"tenant {tenant_id!r} has undrained transactions; "
                    "drain before evicting"
                )
            try:
                tenant.manager.flush()
                tenant.recovery.checkpoint(tenant.engine, tenant.manager)
            finally:
                self._resident.pop(tenant_id, None)
                self._m_resident.set(len(self._resident))
                try:
                    tenant.recovery.stop()
                except Exception:
                    pass
                try:
                    tenant.manager.detach()
                except Exception:
                    pass
        self.metrics.counter(
            "serve_evictions_total", reason=reason
        ).inc()
        return True

    def idle_candidates(self, now: Optional[float] = None) -> list[str]:
        """Tenants eligible for eviction: idle past ``idle_seconds``, or
        (oldest first) beyond ``max_resident``."""
        now = self.clock() if now is None else now
        by_age = sorted(
            self._resident.values(), key=lambda t: t.last_active
        )
        candidates = []
        if self.idle_seconds is not None:
            candidates.extend(
                t.id
                for t in by_age
                if now - t.last_active >= self.idle_seconds
                and not t.pending_futures
            )
        overflow = len(self._resident) - self.max_resident
        if overflow > 0:
            for tenant in by_age:
                if overflow <= 0:
                    break
                if tenant.id not in candidates and not tenant.pending_futures:
                    candidates.append(tenant.id)
                    overflow -= 1
        return candidates

    async def close_all(self) -> None:
        """Evict every resident tenant (orderly shutdown: all durable)."""
        for tenant_id in list(self._resident):
            await self.evict(tenant_id, reason="shutdown")

    # -- notifications -----------------------------------------------------

    def subscribe(
        self, tenant_id: str, token: int, callback: Callable
    ) -> None:
        self.subscribers.setdefault(tenant_id, {})[token] = callback

    def unsubscribe(self, tenant_id: str, token: int) -> None:
        subs = self.subscribers.get(tenant_id)
        if subs is not None:
            subs.pop(token, None)
            if not subs:
                self.subscribers.pop(tenant_id, None)

    def subscribers_of(self, tenant_id: str) -> list[Callable]:
        return list(self.subscribers.get(tenant_id, {}).values())
