"""Admission control: per-tenant queue bounds feeding group commit.

Transactions stream in over sessions faster than any single fsync can
absorb; the serving layer therefore rides the engine's existing ingest
batching (:meth:`~repro.engine.ActiveDatabase.enqueue` /
:meth:`~repro.engine.ActiveDatabase.drain`): admitted transaction bodies
queue on the tenant engine, and one drain task per tenant commits them
in WAL commit groups — one fsync per batch, triggers dispatched to the
temporal component in one round.

Backpressure is explicit, not silent: a tenant whose ingest queue is
full refuses the transaction with a typed ``backpressure`` error reply
carrying the queue depth and bound, and the client retries.  The reply
future for an admitted transaction resolves only once its batch is
durable — a session that pipelines N transactions gets N replies in
order after at most ``ceil(N / max_batch)`` fsyncs.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from repro.errors import (
    ProtocolError,
    QueueFullError,
    StorageDegradedError,
)
from repro.obs.metrics import as_registry
from repro.serve.protocol import ERR_BACKPRESSURE, ERR_DEGRADED
from repro.serve.tenant import Tenant


class AdmissionController:
    """Bounds per-tenant ingest and drains admitted work in batches."""

    def __init__(
        self,
        metrics=None,
        max_queue: int = 256,
        max_batch: int = 64,
        on_drained: Optional[Callable[[Tenant], None]] = None,
    ):
        """``max_queue`` bounds each tenant's undrained transactions
        (admission refuses past it); ``max_batch`` caps one group
        commit.  ``on_drained(tenant)`` runs after every drained batch,
        *before* reply futures resolve — the server hooks the
        notification pump there so veto reasons and firing pushes are
        current when replies go out."""
        self.metrics = as_registry(metrics)
        self.max_queue = max(1, max_queue)
        self.max_batch = max(1, max_batch)
        self.on_drained = on_drained
        self._m_admitted = self.metrics.counter("serve_txns_admitted_total")
        self._m_backpressure = self.metrics.counter(
            "serve_backpressure_total"
        )
        self._m_batch = self.metrics.histogram("serve_drain_batch_txns")

    def admit(self, tenant: Tenant, work: Callable) -> "asyncio.Future":
        """Enqueue ``work`` on the tenant engine; returns a future that
        resolves to the finished :class:`Transaction` once its batch is
        durable.  Raises a typed ``backpressure``
        :class:`~repro.errors.ProtocolError` when the tenant queue is
        full."""
        engine = tenant.engine
        depth = engine.queue_depth
        if depth >= self.max_queue:
            self._m_backpressure.inc()
            self.metrics.counter(
                "serve_tenant_backpressure_total", tenant=tenant.id
            ).inc()
            raise ProtocolError(
                ERR_BACKPRESSURE,
                f"tenant {tenant.id!r} ingest queue is full "
                f"({depth}/{self.max_queue}); retry after the batch drains",
                queue_depth=depth,
                max_queue=self.max_queue,
            )
        try:
            engine.enqueue(work)
        except QueueFullError as exc:
            self._m_backpressure.inc()
            raise ProtocolError(
                ERR_BACKPRESSURE,
                str(exc),
                queue_depth=engine.queue_depth,
                max_queue=engine.max_queue,
            ) from exc
        future = asyncio.get_running_loop().create_future()
        tenant.pending_futures.append(future)
        self._m_admitted.inc()
        self.metrics.counter(
            "serve_tenant_txns_total", tenant=tenant.id
        ).inc()
        self._ensure_drain(tenant)
        return future

    # -- draining ----------------------------------------------------------

    def _ensure_drain(self, tenant: Tenant) -> None:
        if not tenant.draining:
            tenant.draining = True
            asyncio.get_running_loop().create_task(self._drain(tenant))

    async def _drain(self, tenant: Tenant) -> None:
        try:
            # Yield one loop iteration: transactions admitted by other
            # ready sessions join this batch instead of each paying their
            # own fsync.
            await asyncio.sleep(0)
            async with tenant.lock:
                while tenant.engine.queue_depth:
                    count = min(tenant.engine.queue_depth, self.max_batch)
                    futures = tenant.pending_futures[:count]
                    del tenant.pending_futures[:count]
                    state_base = tenant.engine.state_count
                    try:
                        done = tenant.engine.drain(max_batch=count)
                    except StorageDegradedError as exc:
                        self._fail(
                            futures,
                            ProtocolError(
                                ERR_DEGRADED, str(exc), reason=exc.reason
                            ),
                        )
                        continue
                    except Exception as exc:
                        self._fail(futures, exc)
                        continue
                    self._m_batch.observe(len(done))
                    # Every drained transaction — commit or veto-abort —
                    # appends exactly one state in FIFO order, so its
                    # global state index is positional.
                    for i, txn in enumerate(done):
                        txn.serve_state_index = state_base + i
                    if self.on_drained is not None:
                        self.on_drained(tenant)
                    for future, txn in zip(futures, done):
                        if not future.cancelled():
                            future.set_result(txn)
                    # drain() consumed fewer works than futures only if it
                    # raised, handled above; defensively fail leftovers.
                    for future in futures[len(done):]:
                        self._fail([future], RuntimeError("transaction lost"))
                    # Yield between batches so replies flush while the
                    # next batch accumulates.
                    await asyncio.sleep(0)
        finally:
            tenant.draining = False
            # Late admits that raced the flag: reschedule.
            if tenant.engine.queue_depth and tenant.pending_futures:
                self._ensure_drain(tenant)

    @staticmethod
    def _fail(futures, exc: BaseException) -> None:
        for future in futures:
            if not future.cancelled():
                future.set_exception(exc)
