"""Newline-delimited JSON session protocol for the serving layer.

One frame per line, UTF-8 JSON, terminated by ``\\n``.  Client frames are
*requests* — objects with an ``"op"`` key and an optional client-chosen
``"id"`` echoed verbatim in the reply.  Server frames are either
*replies* (``{"ok": true/false, ...}``) or *notifications*
(``{"ev": "firing" | "ic_veto", "tenant": ..., ...}``) pushed for every
tenant the session has opened.  Requests may be pipelined: transaction
replies arrive when their group commit turns durable, so a session can
keep streaming while a batch drains.

Requests
--------
``hello``                  server identity, protocol version, frame limit
``ping``                   liveness probe
``open``    tenant        open (lazily recover) a tenant; start notifications
``txn``     tenant stmts  apply one transaction; reply after group commit
``query``   tenant text   evaluate query text against the committed state
``stats``   [tenant]      server (and optionally tenant) statistics
``close``   tenant        detach this session from a tenant
``evict``   tenant        checkpoint-then-close the tenant now (admin)

Transaction statements (``stmts`` — a JSON list, applied atomically)::

    ["set", item, value]            txn.set_item
    ["insert", relation, [v, ...]]  txn.insert
    ["delete", relation, {attr: value, ...}]   equality match
    ["update", relation, {attr: value, ...}, {attr: value, ...}]
    ["event", name, params...]      txn.post_event (user event)

Typed errors: every refused frame gets ``{"ok": false, "error":
{"type": <constant below>, "message": ...}}`` plus structured detail
keys (queue depths for backpressure, limits for oversized frames).  A
refused frame never corrupts tenant state: admission rejects before the
engine sees the transaction, and malformed frames are dropped at the
framing layer.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable, Optional

from repro.errors import ProtocolError
from repro.events.model import Event

#: Wire protocol version, bumped on incompatible frame changes.
PROTOCOL_VERSION = 1

#: Default cap on one frame's encoded size (requests and replies).
DEFAULT_MAX_FRAME = 256 * 1024

# -- typed error identifiers -------------------------------------------------

#: The frame was not valid JSON (or not a JSON object).
ERR_MALFORMED = "malformed_frame"
#: The frame exceeded the negotiated size limit; the connection closes
#: (NDJSON cannot resynchronise inside an unbounded line).
ERR_OVERSIZED = "oversized_frame"
#: Structurally valid JSON but not a valid request (missing/bad fields).
ERR_INVALID = "invalid_request"
#: The ``op`` value names no known operation.
ERR_UNKNOWN_OP = "unknown_op"
#: The tenant id failed validation (unsafe or empty path component).
ERR_INVALID_TENANT = "invalid_tenant"
#: The session used a tenant it never opened.
ERR_TENANT_NOT_OPEN = "tenant_not_open"
#: The session opened a tenant it already holds open.
ERR_TENANT_ALREADY_OPEN = "tenant_already_open"
#: Admission control refused the transaction (per-tenant queue bound).
ERR_BACKPRESSURE = "backpressure"
#: The tenant has undrained transactions (eviction refused).
ERR_TENANT_BUSY = "tenant_busy"
#: Query parse/evaluation failure.
ERR_QUERY = "query_error"
#: The tenant engine is in degraded read-only mode.
ERR_DEGRADED = "storage_degraded"
#: Unexpected server-side failure (the frame was not applied).
ERR_INTERNAL = "internal"

#: Operations a session may request.
OPS = frozenset(
    {"hello", "ping", "open", "txn", "query", "stats", "close", "evict"}
)

#: Statement kinds accepted inside a ``txn`` frame.
STATEMENT_KINDS = frozenset({"set", "insert", "delete", "update", "event"})


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """Encode one frame: compact JSON + newline."""
    return (
        json.dumps(payload, separators=(",", ":"), sort_keys=True, default=str)
        + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> dict:
    """Decode one request line into a frame dict.

    Raises :class:`~repro.errors.ProtocolError` with a typed error
    identifier: ``oversized_frame`` past ``max_frame`` bytes,
    ``malformed_frame`` for bad JSON or a non-object, and
    ``invalid_request`` / ``unknown_op`` for a missing or unknown op.
    """
    if len(line) > max_frame:
        raise ProtocolError(
            ERR_OVERSIZED,
            f"frame of {len(line)} bytes exceeds the {max_frame}-byte limit",
            frame_bytes=len(line),
            max_frame=max_frame,
        )
    try:
        frame = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            ERR_MALFORMED, f"frame is not valid JSON: {exc}"
        ) from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            ERR_MALFORMED,
            f"frame must be a JSON object, got {type(frame).__name__}",
        )
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError(ERR_INVALID, 'frame is missing a string "op"')
    if op not in OPS:
        raise ProtocolError(
            ERR_UNKNOWN_OP, f"unknown op {op!r}", op=op
        )
    return frame


# ---------------------------------------------------------------------------
# Replies and notifications
# ---------------------------------------------------------------------------


def ok_reply(frame_id: Any = None, **fields) -> dict:
    reply = {"ok": True, **fields}
    if frame_id is not None:
        reply["id"] = frame_id
    return reply


def error_reply(
    error: ProtocolError, frame_id: Any = None
) -> dict:
    reply = {
        "ok": False,
        "error": {
            "type": error.type,
            "message": str(error),
            **error.detail,
        },
    }
    if frame_id is not None:
        reply["id"] = frame_id
    return reply


def firing_notification(tenant_id: str, record) -> dict:
    """Encode a :class:`~repro.rules.rule.FiringRecord` as a push frame."""
    return {
        "ev": "firing",
        "tenant": tenant_id,
        "rule": record.rule,
        "bindings": [[k, v] for k, v in record.bindings],
        "state_index": record.state_index,
        "timestamp": record.timestamp,
        "shadow": record.shadow,
    }


def veto_notification(tenant_id: str, event) -> dict:
    """Encode an ``ic_violation`` trace event as a push frame."""
    data = event.data
    return {
        "ev": "ic_veto",
        "tenant": tenant_id,
        "rule": data.get("rule"),
        "txn": data.get("txn"),
        "state_index": data.get("state_index"),
        "timestamp": event.timestamp,
    }


# ---------------------------------------------------------------------------
# Transaction statements
# ---------------------------------------------------------------------------


def _match_predicate(match: dict) -> Callable:
    items = tuple(match.items())

    def predicate(row) -> bool:
        return all(row[attr] == value for attr, value in items)

    return predicate


def _check_mapping(value, what: str) -> dict:
    if not isinstance(value, dict) or not all(
        isinstance(k, str) for k in value
    ):
        raise ProtocolError(
            ERR_INVALID, f"{what} must be an object with string keys"
        )
    return value


def compile_statements(stmts) -> Callable:
    """Validate ``stmts`` and compile them into a transaction body.

    Returns ``work(txn)`` applying every statement in order; raises a
    typed ``invalid_request`` :class:`~repro.errors.ProtocolError` for
    anything structurally wrong, *before* the engine is touched.
    """
    if not isinstance(stmts, list) or not stmts:
        raise ProtocolError(
            ERR_INVALID, '"stmts" must be a non-empty JSON list'
        )
    compiled: list[Callable] = []
    for i, stmt in enumerate(stmts):
        if not isinstance(stmt, list) or not stmt or not isinstance(
            stmt[0], str
        ):
            raise ProtocolError(
                ERR_INVALID,
                f"statement {i} must be a list starting with a kind string",
            )
        kind = stmt[0]
        if kind not in STATEMENT_KINDS:
            raise ProtocolError(
                ERR_INVALID,
                f"statement {i}: unknown kind {kind!r}",
                kind=kind,
            )
        if kind == "set":
            if len(stmt) != 3 or not isinstance(stmt[1], str):
                raise ProtocolError(
                    ERR_INVALID, f"statement {i}: want [set, item, value]"
                )
            name, value = stmt[1], stmt[2]
            compiled.append(lambda txn, n=name, v=value: txn.set_item(n, v))
        elif kind == "insert":
            if (
                len(stmt) != 3
                or not isinstance(stmt[1], str)
                or not isinstance(stmt[2], list)
            ):
                raise ProtocolError(
                    ERR_INVALID,
                    f"statement {i}: want [insert, relation, [values...]]",
                )
            rel, values = stmt[1], tuple(stmt[2])
            compiled.append(lambda txn, r=rel, v=values: txn.insert(r, v))
        elif kind == "delete":
            if len(stmt) != 3 or not isinstance(stmt[1], str):
                raise ProtocolError(
                    ERR_INVALID,
                    f"statement {i}: want [delete, relation, {{match}}]",
                )
            rel = stmt[1]
            match = _check_mapping(stmt[2], f"statement {i} match")
            pred = _match_predicate(match)
            compiled.append(lambda txn, r=rel, p=pred: txn.delete(r, p))
        elif kind == "update":
            if len(stmt) != 4 or not isinstance(stmt[1], str):
                raise ProtocolError(
                    ERR_INVALID,
                    f"statement {i}: want [update, relation, {{match}}, "
                    f"{{changes}}]",
                )
            rel = stmt[1]
            match = _check_mapping(stmt[2], f"statement {i} match")
            changes = _check_mapping(stmt[3], f"statement {i} changes")
            pred = _match_predicate(match)
            compiled.append(
                lambda txn, r=rel, p=pred, c=changes: txn.update(
                    r, p, lambda _row, cc=c: cc
                )
            )
        else:  # event
            if len(stmt) < 2 or not isinstance(stmt[1], str):
                raise ProtocolError(
                    ERR_INVALID,
                    f"statement {i}: want [event, name, params...]",
                )
            event = Event(stmt[1], tuple(stmt[2:]))
            compiled.append(lambda txn, e=event: txn.post_event(e))

    def work(txn) -> None:
        for apply_stmt in compiled:
            apply_stmt(txn)

    return work
