"""Benchmark support: timing helpers, result tables, and JSON emission."""

from repro.bench.harness import (
    Table,
    emit_bench_json,
    per_update_micros,
    smoke_mode,
    summarize,
    time_best,
    time_once,
)

__all__ = [
    "Table",
    "time_once",
    "time_best",
    "per_update_micros",
    "summarize",
    "smoke_mode",
    "emit_bench_json",
]
