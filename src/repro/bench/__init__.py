"""Benchmark support: timing helpers and result tables."""

from repro.bench.harness import Table, per_update_micros, summarize, time_best, time_once

__all__ = ["Table", "time_once", "time_best", "per_update_micros", "summarize"]
