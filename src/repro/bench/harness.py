"""Shared benchmark utilities: timing, paper-style result tables, and
machine-readable ``BENCH_*.json`` emission (optionally including a metrics
registry snapshot)."""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path
from typing import Any, Callable, Optional, Sequence


def time_once(fn: Callable[[], Any]) -> float:
    """Wall-clock seconds for one call."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def time_best(fn: Callable[[], Any], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds."""
    return min(time_once(fn) for _ in range(repeat))


class Table:
    """A fixed-width ASCII results table (every benchmark prints one)."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append(sep)
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
        print()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def per_update_micros(total_seconds: float, updates: int) -> float:
    return 1e6 * total_seconds / max(1, updates)


def summarize(values: Sequence[float]) -> dict:
    return {
        "mean": statistics.fmean(values),
        "median": statistics.median(values),
        "max": max(values),
        "min": min(values),
    }


def smoke_mode() -> bool:
    """True when benchmarks should run at CI smoke sizes (set by the
    ``--smoke`` pytest option in ``benchmarks/conftest.py`` or the
    ``BENCH_SMOKE=1`` environment variable): small workloads, shape
    assertions relaxed, but every ``BENCH_*.json`` still refreshed."""
    return os.environ.get("BENCH_SMOKE") == "1"


def _repo_root() -> Optional[Path]:
    """The repository root (nearest ancestor with a ``pyproject.toml``) —
    where ``BENCH_*.json`` trajectory files live by default, so results
    land in the same place however the benchmarks are invoked."""
    for candidate in Path(__file__).resolve().parents:
        if (candidate / "pyproject.toml").exists():
            return candidate
    return None


def emit_bench_json(
    name: str,
    payload: dict,
    registry=None,
    directory: Optional[str] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` with the benchmark's results.

    ``payload`` is the benchmark-specific result document; when an enabled
    metrics ``registry`` is passed, its full snapshot is embedded under a
    ``"metrics"`` key.  The target directory is, in order: the explicit
    ``directory`` argument, the ``BENCH_DIR`` environment variable, the
    repository root, the current directory.  Returns the path written.
    """
    if directory is None:
        directory = os.environ.get("BENCH_DIR")
    if directory is None:
        directory = _repo_root() or "."
    doc = {"bench": name, **payload}
    if registry is not None and getattr(registry, "enabled", False):
        doc["metrics"] = registry.to_dict()
    path = Path(directory) / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
