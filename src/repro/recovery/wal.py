"""Durable write-ahead log of committed system states.

Every state the engine appends — transaction commits, user events, clock
ticks — is written to an append-only JSONL file *before* the rule manager
(and therefore any rule action) observes it: the log subscribes at the
front of the event bus.  Each record carries the state's identity and
delta::

    {"seq": 7, "ts": 12, "events": [["transaction_commit", [3]]],
     "changes": {"price": {"kind": "scalar", "value": 60.0}},
     "delta": ["price"]}

plus one *base* record (``"seq": null``) capturing the full catalog when
the log is first attached, so a log is replayable even without a
checkpoint.  Torn final records (a crash mid-append) are detected and
truncated by :func:`load_wal`; corruption anywhere else raises
:class:`~repro.errors.RecoveryError`.

Group commit (:meth:`WriteAheadLog.begin_group` / ``end_group``, driven
by :meth:`repro.engine.ActiveDatabase.batch`): records inside a group are
tagged ``"g": <id>`` and written *without* per-record fsync; the group
ends with a commit-marker record ``{"g": id, "end": true}`` followed by a
single fsync.  :func:`load_wal` drops (and truncates) a trailing group
that lacks its marker — a crash mid-batch loses the batch atomically,
never a prefix of it.  Untagged records keep their own fsync and remain
individually durable, so group and non-group traffic interleave safely.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

from repro.errors import RecoveryError, StorageDegradedError
from repro.recovery.faultinject import (
    DISK_FULL,
    FSYNC_FAIL,
    MID_GROUP_COMMIT,
    MID_WAL,
    POST_COMMIT,
    PRE_COMMIT,
)
from repro.storage.persist import _encode_item, _encode_value, fsync_dir
from repro.storage.tiers import retry_io

PathLike = Union[str, Path]


class WriteAheadLog:
    """Append-only durable log of (seq, ts, events, changes, delta)."""

    def __init__(
        self,
        path: PathLike,
        fsync: bool = True,
        injector=None,
        retries: int = 3,
        backoff: float = 0.002,
    ):
        self.path = Path(path)
        self.fsync = fsync
        self.injector = injector
        self.retries = retries
        self.backoff = backoff
        self.records_written = 0
        self._prev = None
        self._fp = None
        self._subscription = None
        self._m_records = None
        self._m_bytes = None
        self._m_groups = None
        self._m_retries = None
        #: Index of the state most recently written via :meth:`prepare`
        #: (the engine's pre-install durability hook); the bus
        #: subscription skips it to avoid double-logging.
        self._last_prepared: Optional[int] = None
        #: Active group id (None outside a group) and whether the group
        #: has written any record yet (empty groups skip the marker).
        self._group: Optional[int] = None
        self._group_dirty = False
        self._next_group = 0
        self._engine = None

    @classmethod
    def attach(
        cls,
        engine,
        path: PathLike,
        fsync: bool = True,
        injector=None,
    ) -> "WriteAheadLog":
        """Start logging ``engine``'s states to ``path``.

        If the file is empty (or absent) a base record with the full
        current state and query catalog is written first.  The
        subscription goes to the *front* of the bus: a state is durable
        before any other subscriber — in particular the rule manager —
        sees it."""
        wal = cls(path, fsync=fsync, injector=injector)
        wal._prev = engine.db.state
        fresh = not wal.path.exists() or wal.path.stat().st_size == 0
        wal._fp = open(wal.path, "a")
        if fresh:
            state = engine.db.state
            wal._write_line(
                {
                    "seq": None,
                    "ts": None,
                    "items": {
                        name: _encode_item(state.raw_item(name))
                        for name in state.item_names()
                    },
                    "queries": {
                        name: {
                            "params": list(engine.db.queries.get(name).params),
                            "text": str(engine.db.queries.get(name).body),
                        }
                        for name in engine.db.queries.names()
                    },
                }
            )
        if fresh:
            # Make the log file's *name* durable too: a crash right after
            # creation must not lose the base record to an unsynced
            # directory entry.
            fsync_dir(wal.path.parent if str(wal.path.parent) else ".")
        wal._subscription = engine.bus.subscribe(wal._on_state, front=True)
        wal._engine = engine
        if hasattr(engine, "durability"):
            # The engine's batch() amortizes our fsync via
            # begin_group()/end_group().
            engine.durability = wal
        registry = getattr(engine, "metrics", None)
        if registry is not None and registry.enabled:
            wal._m_records = registry.counter("wal_records_total")
            wal._m_bytes = registry.gauge("wal_bytes")
            wal._m_groups = registry.counter("wal_group_commits_total")
            wal._m_retries = registry.counter("io_retries_total")
        return wal

    # -- appending ---------------------------------------------------------

    def prepare(self, state) -> None:
        """Write ``state``'s record durably *before* the engine installs
        it (called from the commit path via
        :meth:`~repro.engine.ActiveDatabase._prepare_durable`).  The bus
        subscription then recognizes the already-prepared state and skips
        it, so every state is logged exactly once either way."""
        self._log_state(state)
        self._last_prepared = state.index

    def _on_state(self, state) -> None:
        if state.index == self._last_prepared:
            # Already durable via prepare(); nothing to log.
            return
        self._log_state(state)

    def _log_state(self, state) -> None:
        if self.injector is not None:
            self.injector.hit(PRE_COMMIT)
        record = {
            "seq": state.index,
            "ts": state.timestamp,
            "events": [
                [e.name, [_encode_value(p) for p in e.params]]
                for e in sorted(state.events, key=str)
            ],
            "changes": {
                name: _encode_item(state.db.raw_item(name))
                for name in state.db.changed_items(self._prev)
            },
            "delta": (
                None if state.delta is None else sorted(state.delta)
            ),
        }
        if self._group is not None:
            record["g"] = self._group
        self._write_line(record)
        self._prev = state.db
        if self.injector is not None:
            self.injector.hit(POST_COMMIT)

    def _durable_write(self, text: str, sync: bool) -> None:
        """Append ``text`` (and optionally fsync) with bounded
        retry-with-backoff on transient ``OSError``.  A failed attempt is
        rewound (seek + truncate back to its start offset) so a retry —
        or any later record — never duplicates bytes.  Exhaustion and
        non-transient errors (ENOSPC above all) flip the engine into
        degraded read-only mode and surface as
        :class:`~repro.errors.StorageDegradedError`."""

        def attempt() -> None:
            if self.injector is not None:
                self.injector.io_check(DISK_FULL)
            start = self._fp.tell()
            try:
                self._fp.write(text)
                self._fp.flush()
                if sync:
                    if self.injector is not None:
                        self.injector.io_check(FSYNC_FAIL)
                    os.fsync(self._fp.fileno())
            except OSError:
                try:
                    self._fp.seek(start)
                    self._fp.truncate(start)
                except OSError:
                    pass
                raise

        def note(exc: OSError, _attempt: int) -> None:
            if self._m_retries is not None:
                self._m_retries.inc()

        try:
            retry_io(
                attempt,
                retries=self.retries,
                backoff=self.backoff,
                on_retry=note,
            )
        except OSError as exc:
            if self._engine is not None and hasattr(
                self._engine, "enter_degraded"
            ):
                self._engine.enter_degraded(f"WAL append failed: {exc}")
            raise StorageDegradedError(
                f"WAL append to {str(self.path)!r} failed after "
                f"{self.retries} retries: {exc}",
                reason=str(exc),
            ) from exc

    def _write_line(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        if self.injector is not None and self.injector.due(MID_WAL):
            # Torn write: a prefix of the record reaches the disk, then
            # the "machine" dies.
            torn = line[: max(1, len(line) // 2)]
            self._fp.write(torn)
            self._fp.flush()
            os.fsync(self._fp.fileno())
            self.injector.hit(MID_WAL)
        # Group commit defers durability to the single fsync in
        # end_group(); the record is still flushed (visible to load_wal
        # for inspection) but not yet guaranteed on disk.
        self._durable_write(line, sync=self._group is None and self.fsync)
        if self._group is not None:
            self._group_dirty = True
        self.records_written += 1
        if self._m_records is not None:
            self._m_records.inc()
            self._m_bytes.set(self._fp.tell())

    # -- group commit ------------------------------------------------------

    def begin_group(self) -> int:
        """Start a commit group: subsequent records are tagged with the
        group id and their fsyncs deferred until :meth:`end_group`."""
        if self._group is not None:
            raise RecoveryError("WAL commit groups do not nest")
        self._group = self._next_group
        self._next_group += 1
        self._group_dirty = False
        return self._group

    def end_group(self) -> None:
        """Close the current group: write its commit marker and make the
        whole batch durable with one fsync.  An empty group (no records
        written) leaves no trace in the log."""
        if self._group is None:
            raise RecoveryError("end_group() without begin_group()")
        group, self._group = self._group, None
        if not self._group_dirty:
            return
        if self.injector is not None:
            self.injector.hit(MID_GROUP_COMMIT)
        marker = json.dumps({"g": group, "end": True}) + "\n"
        self._durable_write(marker, sync=self.fsync)
        if self._m_groups is not None:
            self._m_groups.inc()
            self._m_bytes.set(self._fp.tell())

    def probe(self) -> None:
        """Verify the log is writable again (degraded-mode exit): flush
        and fsync the descriptor.  Raises ``OSError`` while the disk is
        still unhealthy."""
        if self.injector is not None:
            self.injector.io_check(DISK_FULL)
            self.injector.io_check(FSYNC_FAIL)
        self._fp.flush()
        os.fsync(self._fp.fileno())

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None
        if self._engine is not None:
            if getattr(self._engine, "durability", None) is self:
                self._engine.durability = None
            self._engine = None
        if self._fp is not None:
            self._fp.close()
            self._fp = None


def load_wal(
    path: PathLike, truncate_torn: bool = True
) -> tuple[list[dict], bool]:
    """Read a WAL; returns ``(records, torn)``.

    A torn *final* record — the signature of a crash mid-append — is
    dropped, and with ``truncate_torn`` (the default) the file itself is
    truncated back to the last complete record so later appends produce a
    clean log.  A malformed record with complete records *after* it is
    real corruption and raises :class:`~repro.errors.RecoveryError`.

    Group atomicity: records tagged ``"g"`` whose commit marker
    (``{"g": id, "end": true}``) never made it to the log — a crash
    mid-group-commit — are dropped (and truncated) as a unit, so a batch
    replays entirely or not at all.  Because groups are written
    sequentially, an unmarked group is always a suffix of the log."""
    target = Path(path)
    if not target.exists():
        return [], False
    data = target.read_bytes()
    records: list[dict] = []
    starts: list[int] = []
    offset = 0
    good_end = 0
    torn = False
    while offset < len(data):
        newline = data.find(b"\n", offset)
        end = len(data) if newline < 0 else newline + 1
        raw = data[offset:end]
        stripped = raw.strip()
        if stripped:
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if data[end:].strip():
                    raise RecoveryError(
                        f"corrupt WAL record at byte {offset} of "
                        f"{str(path)!r} (not the final record)"
                    ) from None
                torn = True
                break
            records.append(record)
            starts.append(offset)
            good_end = end
        offset = end
    # Drop a trailing group that never got its commit marker: all-or-
    # nothing, never a prefix.
    ended = {r["g"] for r in records if r.get("end") and "g" in r}
    cut = None
    for i, record in enumerate(records):
        if "g" in record and not record.get("end") and record["g"] not in ended:
            cut = i
            break
    if cut is not None:
        good_end = starts[cut]
        records = records[:cut]
        torn = True
    if torn and truncate_torn:
        with open(target, "rb+") as fp:
            fp.truncate(good_end)
    return records, torn
