"""Durable write-ahead log of committed system states.

Every state the engine appends — transaction commits, user events, clock
ticks — is written to an append-only JSONL file *before* the rule manager
(and therefore any rule action) observes it: the log subscribes at the
front of the event bus.  Each record carries the state's identity and
delta::

    {"seq": 7, "ts": 12, "events": [["transaction_commit", [3]]],
     "changes": {"price": {"kind": "scalar", "value": 60.0}},
     "delta": ["price"]}

plus one *base* record (``"seq": null``) capturing the full catalog when
the log is first attached, so a log is replayable even without a
checkpoint.  Torn final records (a crash mid-append) are detected and
truncated by :func:`load_wal`; corruption anywhere else raises
:class:`~repro.errors.RecoveryError`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

from repro.errors import RecoveryError
from repro.recovery.faultinject import MID_WAL, POST_COMMIT, PRE_COMMIT
from repro.storage.persist import _encode_item, _encode_value

PathLike = Union[str, Path]


class WriteAheadLog:
    """Append-only durable log of (seq, ts, events, changes, delta)."""

    def __init__(
        self,
        path: PathLike,
        fsync: bool = True,
        injector=None,
    ):
        self.path = Path(path)
        self.fsync = fsync
        self.injector = injector
        self.records_written = 0
        self._prev = None
        self._fp = None
        self._subscription = None
        self._m_records = None
        self._m_bytes = None

    @classmethod
    def attach(
        cls,
        engine,
        path: PathLike,
        fsync: bool = True,
        injector=None,
    ) -> "WriteAheadLog":
        """Start logging ``engine``'s states to ``path``.

        If the file is empty (or absent) a base record with the full
        current state and query catalog is written first.  The
        subscription goes to the *front* of the bus: a state is durable
        before any other subscriber — in particular the rule manager —
        sees it."""
        wal = cls(path, fsync=fsync, injector=injector)
        wal._prev = engine.db.state
        fresh = not wal.path.exists() or wal.path.stat().st_size == 0
        wal._fp = open(wal.path, "a")
        if fresh:
            state = engine.db.state
            wal._write_line(
                {
                    "seq": None,
                    "ts": None,
                    "items": {
                        name: _encode_item(state.raw_item(name))
                        for name in state.item_names()
                    },
                    "queries": {
                        name: {
                            "params": list(engine.db.queries.get(name).params),
                            "text": str(engine.db.queries.get(name).body),
                        }
                        for name in engine.db.queries.names()
                    },
                }
            )
        wal._subscription = engine.bus.subscribe(wal._on_state, front=True)
        registry = getattr(engine, "metrics", None)
        if registry is not None and registry.enabled:
            wal._m_records = registry.counter("wal_records_total")
            wal._m_bytes = registry.gauge("wal_bytes")
        return wal

    # -- appending ---------------------------------------------------------

    def _on_state(self, state) -> None:
        if self.injector is not None:
            self.injector.hit(PRE_COMMIT)
        record = {
            "seq": state.index,
            "ts": state.timestamp,
            "events": [
                [e.name, [_encode_value(p) for p in e.params]]
                for e in sorted(state.events, key=str)
            ],
            "changes": {
                name: _encode_item(state.db.raw_item(name))
                for name in state.db.changed_items(self._prev)
            },
            "delta": (
                None if state.delta is None else sorted(state.delta)
            ),
        }
        self._write_line(record)
        self._prev = state.db
        if self.injector is not None:
            self.injector.hit(POST_COMMIT)

    def _write_line(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        if self.injector is not None and self.injector.due(MID_WAL):
            # Torn write: a prefix of the record reaches the disk, then
            # the "machine" dies.
            torn = line[: max(1, len(line) // 2)]
            self._fp.write(torn)
            self._fp.flush()
            os.fsync(self._fp.fileno())
            self.injector.hit(MID_WAL)
        self._fp.write(line)
        self._fp.flush()
        if self.fsync:
            os.fsync(self._fp.fileno())
        self.records_written += 1
        if self._m_records is not None:
            self._m_records.inc()
            self._m_bytes.set(self._fp.tell())

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None
        if self._fp is not None:
            self._fp.close()
            self._fp = None


def load_wal(
    path: PathLike, truncate_torn: bool = True
) -> tuple[list[dict], bool]:
    """Read a WAL; returns ``(records, torn)``.

    A torn *final* record — the signature of a crash mid-append — is
    dropped, and with ``truncate_torn`` (the default) the file itself is
    truncated back to the last complete record so later appends produce a
    clean log.  A malformed record with complete records *after* it is
    real corruption and raises :class:`~repro.errors.RecoveryError`."""
    target = Path(path)
    if not target.exists():
        return [], False
    data = target.read_bytes()
    records: list[dict] = []
    offset = 0
    good_end = 0
    torn = False
    while offset < len(data):
        newline = data.find(b"\n", offset)
        end = len(data) if newline < 0 else newline + 1
        raw = data[offset:end]
        stripped = raw.strip()
        if stripped:
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if data[end:].strip():
                    raise RecoveryError(
                        f"corrupt WAL record at byte {offset} of "
                        f"{str(path)!r} (not the final record)"
                    ) from None
                torn = True
                break
            records.append(record)
            good_end = end
        offset = end
    if torn and truncate_torn:
        with open(target, "rb+") as fp:
            fp.truncate(good_end)
    return records, torn
