"""Crash recovery for the active database: WAL, checkpoints, replay.

The paper's temporal component "maintains only information necessary for
future evaluation of conditions" — which makes that retained state
precious: losing it silently changes which rules fire.  This package
makes it durable:

* :class:`~repro.recovery.wal.WriteAheadLog` — every committed system
  state hits the disk before any rule action sees it;
* :mod:`~repro.recovery.checkpoint` — atomic snapshots of engine +
  evaluator state (via the ``to_state``/``from_state`` protocol) that
  bound replay work;
* :class:`~repro.recovery.manager.RecoveryManager` — checkpoint load +
  torn-tail truncation + WAL tail replay with actions suppressed;
* :mod:`~repro.recovery.faultinject` — deterministic crash points for
  differential crash-consistency tests.
"""

from repro.recovery.checkpoint import read_checkpoint, write_checkpoint
from repro.recovery.faultinject import (
    CRASH_POINTS,
    DISK_FULL,
    FSYNC_FAIL,
    IO_POINTS,
    MID_CHECKPOINT,
    MID_GROUP_COMMIT,
    MID_SEGMENT_WRITE,
    MID_WAL,
    POST_COMMIT,
    PRE_COMMIT,
    TORN_SEGMENT,
    FaultInjector,
    SimulatedCrash,
)
from repro.recovery.manager import RecoveryManager, RecoveryReport, recover
from repro.recovery.wal import WriteAheadLog, load_wal

__all__ = [
    "CRASH_POINTS",
    "DISK_FULL",
    "FSYNC_FAIL",
    "IO_POINTS",
    "MID_CHECKPOINT",
    "MID_GROUP_COMMIT",
    "MID_SEGMENT_WRITE",
    "MID_WAL",
    "POST_COMMIT",
    "PRE_COMMIT",
    "TORN_SEGMENT",
    "FaultInjector",
    "RecoveryManager",
    "RecoveryReport",
    "SimulatedCrash",
    "WriteAheadLog",
    "load_wal",
    "read_checkpoint",
    "recover",
    "write_checkpoint",
]
