"""Deterministic fault injection for crash-consistency testing.

A :class:`FaultInjector` is threaded through the write-ahead log and the
checkpointer; tests arm a *crash point* and drive a workload until the
injector raises :class:`SimulatedCrash` there.  The crash points map to
the distinct durability windows of the commit protocol:

``pre-commit``
    Before the WAL record is written: the state exists in memory but not
    on disk.  Recovery must behave as if the operation never happened.
``post-commit``
    After the WAL record is durable but before any rule action runs.
    Recovery must replay the state (actions suppressed — Section 3's
    detached couplings make this safe).
``mid-wal-append``
    A torn write: only a prefix of the record reaches the disk.  Recovery
    must truncate the torn tail and proceed as for ``pre-commit``.
``mid-checkpoint``
    After the checkpoint temp file is written but before the atomic
    rename.  Recovery must keep using the previous checkpoint.
``mid-group-commit``
    During a group commit: the batch's WAL records are written (and may
    even be on disk) but the commit marker is not.  Recovery must drop
    the whole batch — an unmarked group is all-or-nothing, never a
    replayed prefix.
``mid-segment-write``
    Crash after a history spill segment's header and part of its payload
    reach the disk, before the segment is sealed.  The segment must be
    quarantined on load, never half-read; the spilled states stay in
    memory (a spill is atomic: seal, then drop).
``torn-segment``
    Torn segment write: a byte-level prefix of the final record reaches
    the disk before the crash.  Segment load must truncate the torn tail,
    detect the header/payload mismatch, and refuse the segment.

Beyond crashes, the injector simulates *I/O errors* — the disk staying
alive but refusing writes — at two points:

``disk-full``
    ``OSError(ENOSPC)`` on a write.  Not transient: retry must not paper
    over it; the engine enters degraded read-only mode.
``fsync-fail``
    ``OSError(EIO)`` on an fsync.  Transient by default (armed with a
    finite count): bounded retry-with-backoff must absorb it.

``arm_io(point, times=n)`` injects the error ``n`` times then heals;
``times=None`` keeps failing until :meth:`FaultInjector.disarm` — the
deterministic way to drive (and then exit) degraded mode.
"""

from __future__ import annotations

import errno as _errno

#: Crash before the WAL append — the state is lost.
PRE_COMMIT = "pre-commit"
#: Crash after the durable WAL append, before rule actions.
POST_COMMIT = "post-commit"
#: Torn WAL write — a prefix of the record reaches the disk.
MID_WAL = "mid-wal-append"
#: Crash between the checkpoint temp-file write and its rename.
MID_CHECKPOINT = "mid-checkpoint"
#: Crash after a batch's WAL records but before its commit marker.
MID_GROUP_COMMIT = "mid-group-commit"
#: Crash mid spill: segment header + partial payload on disk, not sealed.
MID_SEGMENT_WRITE = "mid-segment-write"
#: Torn spill: a byte-level prefix of a segment record hits the disk.
TORN_SEGMENT = "torn-segment"

CRASH_POINTS = (
    PRE_COMMIT, POST_COMMIT, MID_WAL, MID_CHECKPOINT, MID_GROUP_COMMIT,
    MID_SEGMENT_WRITE, TORN_SEGMENT,
)

#: Injected OSError on a write: the disk is full (ENOSPC, not transient).
DISK_FULL = "disk-full"
#: Injected OSError on an fsync: transient EIO the retry loop can absorb.
FSYNC_FAIL = "fsync-fail"

IO_POINTS = (DISK_FULL, FSYNC_FAIL)

#: Default errno injected per I/O point.
_IO_ERRNO = {DISK_FULL: _errno.ENOSPC, FSYNC_FAIL: _errno.EIO}


class SimulatedCrash(BaseException):
    """Raised at an armed crash point.

    Deliberately *not* an :class:`Exception`: the rule manager's action
    retry/isolation machinery catches ``Exception``, and a crash must
    tear through it exactly as ``KeyboardInterrupt`` would, never be
    retried or quarantined away.
    """

    def __init__(self, point: str):
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


class FaultInjector:
    """Arms crash points; raises :class:`SimulatedCrash` when one is hit.

    ``arm(point, after=n)`` fires on the ``n+1``-th hit of ``point`` —
    ``after`` counts the hits that are survived first, making the crash
    schedule fully deterministic for differential tests.
    """

    def __init__(self) -> None:
        self._armed: dict[str, int] = {}
        #: Armed I/O faults: point -> [errno, remaining or None].
        self._io_armed: dict[str, list] = {}
        #: Points that have fired, in order (crashes and I/O faults).
        self.fired: list[str] = []

    def arm(self, point: str, after: int = 0) -> None:
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r}")
        self._armed[point] = max(0, after)

    def arm_io(self, point: str, times=1, err: int = None) -> None:
        """Arm an I/O fault: the next ``times`` passes through ``point``
        raise ``OSError(err)`` (per-point default errno), then the disk
        "heals".  ``times=None`` fails every pass until :meth:`disarm` —
        a disk that stays broken."""
        if point not in IO_POINTS:
            raise ValueError(f"unknown I/O fault point {point!r}")
        if times is not None and times <= 0:
            return
        self._io_armed[point] = [err or _IO_ERRNO[point], times]

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)
        self._io_armed.pop(point, None)

    def io_check(self, point: str) -> None:
        """Raise the armed :class:`OSError` for ``point`` if due.  Called
        from inside retried I/O, so a finite ``times`` exercises the
        retry-with-backoff path and ``times=None`` exhausts it."""
        armed = self._io_armed.get(point)
        if armed is None:
            return
        err, remaining = armed
        if remaining is not None:
            if remaining <= 1:
                del self._io_armed[point]
            else:
                armed[1] = remaining - 1
        self.fired.append(point)
        raise OSError(err, f"injected {point} fault: {_errno.errorcode.get(err, err)}")

    def pending(self, point: str) -> bool:
        """Whether the next :meth:`hit` of ``point`` will crash."""
        return self._armed.get(point) == 0

    def due(self, point: str) -> bool:
        """Advance ``point``'s countdown by one pass; ``True`` when the
        crash is due *now* (the point stays armed — a following
        :meth:`hit` raises).  For crash points that need preparatory
        side effects before raising, e.g. the torn WAL write."""
        if point not in self._armed:
            return False
        if self._armed[point] > 0:
            self._armed[point] -= 1
            return False
        return True

    def hit(self, point: str) -> None:
        """Record one pass through ``point``; crash if armed and due."""
        if point not in self._armed:
            return
        if self._armed[point] > 0:
            self._armed[point] -= 1
            return
        del self._armed[point]
        self.fired.append(point)
        raise SimulatedCrash(point)
