"""Deterministic fault injection for crash-consistency testing.

A :class:`FaultInjector` is threaded through the write-ahead log and the
checkpointer; tests arm a *crash point* and drive a workload until the
injector raises :class:`SimulatedCrash` there.  The crash points map to
the distinct durability windows of the commit protocol:

``pre-commit``
    Before the WAL record is written: the state exists in memory but not
    on disk.  Recovery must behave as if the operation never happened.
``post-commit``
    After the WAL record is durable but before any rule action runs.
    Recovery must replay the state (actions suppressed — Section 3's
    detached couplings make this safe).
``mid-wal-append``
    A torn write: only a prefix of the record reaches the disk.  Recovery
    must truncate the torn tail and proceed as for ``pre-commit``.
``mid-checkpoint``
    After the checkpoint temp file is written but before the atomic
    rename.  Recovery must keep using the previous checkpoint.
``mid-group-commit``
    During a group commit: the batch's WAL records are written (and may
    even be on disk) but the commit marker is not.  Recovery must drop
    the whole batch — an unmarked group is all-or-nothing, never a
    replayed prefix.
"""

from __future__ import annotations

#: Crash before the WAL append — the state is lost.
PRE_COMMIT = "pre-commit"
#: Crash after the durable WAL append, before rule actions.
POST_COMMIT = "post-commit"
#: Torn WAL write — a prefix of the record reaches the disk.
MID_WAL = "mid-wal-append"
#: Crash between the checkpoint temp-file write and its rename.
MID_CHECKPOINT = "mid-checkpoint"
#: Crash after a batch's WAL records but before its commit marker.
MID_GROUP_COMMIT = "mid-group-commit"

CRASH_POINTS = (
    PRE_COMMIT, POST_COMMIT, MID_WAL, MID_CHECKPOINT, MID_GROUP_COMMIT
)


class SimulatedCrash(BaseException):
    """Raised at an armed crash point.

    Deliberately *not* an :class:`Exception`: the rule manager's action
    retry/isolation machinery catches ``Exception``, and a crash must
    tear through it exactly as ``KeyboardInterrupt`` would, never be
    retried or quarantined away.
    """

    def __init__(self, point: str):
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


class FaultInjector:
    """Arms crash points; raises :class:`SimulatedCrash` when one is hit.

    ``arm(point, after=n)`` fires on the ``n+1``-th hit of ``point`` —
    ``after`` counts the hits that are survived first, making the crash
    schedule fully deterministic for differential tests.
    """

    def __init__(self) -> None:
        self._armed: dict[str, int] = {}
        #: Points that have fired, in order.
        self.fired: list[str] = []

    def arm(self, point: str, after: int = 0) -> None:
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r}")
        self._armed[point] = max(0, after)

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def pending(self, point: str) -> bool:
        """Whether the next :meth:`hit` of ``point`` will crash."""
        return self._armed.get(point) == 0

    def due(self, point: str) -> bool:
        """Advance ``point``'s countdown by one pass; ``True`` when the
        crash is due *now* (the point stays armed — a following
        :meth:`hit` raises).  For crash points that need preparatory
        side effects before raising, e.g. the torn WAL write."""
        if point not in self._armed:
            return False
        if self._armed[point] > 0:
            self._armed[point] -= 1
            return False
        return True

    def hit(self, point: str) -> None:
        """Record one pass through ``point``; crash if armed and due."""
        if point not in self._armed:
            return
        if self._armed[point] > 0:
            self._armed[point] -= 1
            return
        del self._armed[point]
        self.fired.append(point)
        raise SimulatedCrash(point)
