"""Crash recovery: checkpoint load + WAL tail replay.

:class:`RecoveryManager` ties the pieces together for one durable
directory::

    rm = RecoveryManager("run/")
    rm.start(engine)                  # WAL: states durable before actions
    ...workload...
    rm.checkpoint(engine, manager)    # bounds future recovery work

    # after a crash, in a fresh process:
    report = RecoveryManager("run/").recover(setup=register_rules)
    report.engine, report.manager     # at the last durable state

Recovery (i) loads the newest checkpoint if one exists, rebuilding the
engine's catalog, clock, and evaluator states without touching history
older than the WAL tail; (ii) truncates a torn final WAL record; (iii)
replays only WAL records at or past the checkpoint — re-stepping the
evaluators with rule actions suppressed (they ran, or deliberately never
will run, before the crash).  ``report.replayed_steps`` counts exactly
the replayed tail, which the tests assert never covers checkpointed
history.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from repro.errors import RecoveryError
from repro.events.model import Event
from repro.recovery.checkpoint import read_checkpoint, write_checkpoint
from repro.recovery.wal import WriteAheadLog, load_wal
from repro.storage.persist import _decode_item
from repro.storage.snapshot import IndexedItem

PathLike = Union[str, Path]


@dataclass
class RecoveryReport:
    """What :meth:`RecoveryManager.recover` rebuilt."""

    engine: object
    manager: object
    #: WAL records re-applied (the tail past the checkpoint) — the
    #: re-evaluation work recovery actually did.
    replayed_steps: int
    #: Total complete state records found in the WAL.
    wal_records: int
    #: Whether a torn final record was truncated.
    truncated: bool
    #: Whether a checkpoint bounded the replay.
    checkpoint_used: bool
    #: Rule-set drift the restore tolerated (``strict_rules=False``):
    #: ``{"added": [...], "dropped": [...], "changed": [...]}`` — names
    #: registered by setup() but absent from the checkpoint, checkpointed
    #: but no longer registered, and re-registered with a different
    #: condition.  ``None`` when no manager state was restored.
    rule_drift: Optional[dict] = None


class RecoveryManager:
    """Durable WAL + checkpoints + recovery for one directory."""

    WAL_NAME = "wal.jsonl"
    CHECKPOINT_NAME = "checkpoint.json"

    def __init__(
        self,
        directory: PathLike,
        fsync: bool = True,
        injector=None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.injector = injector
        self.wal: Optional[WriteAheadLog] = None

    @property
    def wal_path(self) -> Path:
        return self.directory / self.WAL_NAME

    @property
    def checkpoint_path(self) -> Path:
        return self.directory / self.CHECKPOINT_NAME

    # -- logging side ------------------------------------------------------

    def start(self, engine) -> WriteAheadLog:
        """Attach the WAL to ``engine`` (front of the event bus: states
        are durable before rule actions observe them)."""
        self.wal = WriteAheadLog.attach(
            engine, self.wal_path, fsync=self.fsync, injector=self.injector
        )
        return self.wal

    def stop(self) -> None:
        if self.wal is not None:
            self.wal.detach()
            self.wal = None

    def checkpoint(self, engine, manager=None) -> dict:
        """Atomically checkpoint engine (+ temporal component) state.
        With a manager, call after ``manager.flush()`` at a quiet point
        (no batched states)."""
        return write_checkpoint(
            self.checkpoint_path, engine, manager, injector=self.injector
        )

    # -- recovery side -----------------------------------------------------

    def recover(
        self,
        setup: Optional[Callable] = None,
        metrics=None,
        strict_rules: bool = True,
    ) -> RecoveryReport:
        """Rebuild the system from the durable directory.

        ``setup(engine)`` re-registers rules against the restored engine
        — the catalog and named queries are already in place when it runs
        — and returns the :class:`~repro.rules.manager.RuleManager` (or
        ``None``).  Rule *code* is not serialized; re-registering it is
        the caller's half of the recovery contract, and the checkpointed
        evaluator state is verified against it (fingerprints) on load.

        With ``strict_rules=False`` a rule set that *drifted* from the
        checkpoint (rules added, dropped, or redefined since it was
        taken) is tolerated instead of raising
        :class:`~repro.errors.RecoveryError`: the intersection's state is
        restored, the rest starts fresh, and the delta is reported on
        :attr:`RecoveryReport.rule_drift`."""
        from repro.engine import ActiveDatabase

        checkpoint = read_checkpoint(self.checkpoint_path)
        records, truncated = load_wal(self.wal_path)
        runtime = None
        base = None
        if records and records[0].get("seq") is None:
            base = records[0]
        states = [r for r in records if r.get("seq") is not None]

        if checkpoint is not None:
            engine = ActiveDatabase(
                start_time=checkpoint["clock"], metrics=metrics
            )
            self._restore_items(engine, checkpoint["items"])
            self._restore_queries(engine, checkpoint["queries"])
            engine._state_count = checkpoint["state_count"]
            if checkpoint.get("tiers") is not None:
                # The run was spilling to tiered segments: restore the
                # full history (fingerprint-verified segments + empty hot
                # window) instead of a bare suffix.
                from repro.history.spill import SEGMENT_DIR_NAME, restore_tiers

                runtime = restore_tiers(
                    engine,
                    checkpoint["tiers"],
                    self.directory / SEGMENT_DIR_NAME,
                    injector=self.injector,
                )
            elif engine.history is not None:
                # The recovered history is the post-checkpoint suffix;
                # keep its state indices globally consistent.
                engine.history.base_index = checkpoint["state_count"]
            if checkpoint["last"] is not None:
                ts, index = checkpoint["last"]
                engine._last_state = self._stub_state(engine, ts, index)
        elif base is not None:
            engine = ActiveDatabase(metrics=metrics)
            self._restore_items(engine, base["items"])
            self._restore_queries(engine, base.get("queries", {}))
        else:
            raise RecoveryError(
                f"nothing to recover in {str(self.directory)!r}: no "
                "checkpoint and no write-ahead log"
            )

        manager = setup(engine) if setup is not None else None
        manager_state = (
            checkpoint.get("manager") if checkpoint is not None else None
        )
        rule_drift = None
        if manager_state is not None:
            if manager is None:
                raise RecoveryError(
                    "checkpoint contains temporal-component state but "
                    "setup() returned no manager"
                )
            kind = checkpoint.get("manager_kind")
            if kind is not None and type(manager).__name__ != kind:
                raise RecoveryError(
                    f"checkpoint was taken by a {kind}; setup() returned "
                    f"a {type(manager).__name__} — recover with the same "
                    "manager kind (and shard layout) it was taken with"
                )
            rule_drift = manager.from_state(manager_state, strict=strict_rules)
        if runtime is not None and manager is not None:
            # Re-link the restored executed store to its spilled segments
            # and put the manager's stores back under the governor.
            runtime.adopt_manager(manager)

        start_seq = engine.state_count
        tail = [r for r in states if r["seq"] >= start_seq]
        replayed = 0
        if manager is not None:
            manager._replaying = True
        try:
            for record in tail:
                if record["seq"] != engine.state_count:
                    raise RecoveryError(
                        f"WAL gap: expected seq {engine.state_count}, "
                        f"found {record['seq']}"
                    )
                changes = {
                    name: _decode_item(item)
                    for name, item in record["changes"].items()
                }
                db_state = engine.db.state
                if changes:
                    db_state = db_state.with_updates(changes)
                    engine.db._set_state(db_state)
                ts = record["ts"]
                if ts > engine.clock.now:
                    engine.clock.advance_to(ts)
                events = [
                    Event(name, tuple(params))
                    for name, params in record["events"]
                ]
                delta = (
                    None
                    if record.get("delta") is None
                    else frozenset(record["delta"])
                )
                engine._append(db_state, events, ts, delta=delta)
                replayed += 1
        finally:
            if manager is not None:
                manager._replaying = False

        registry = getattr(engine, "metrics", None)
        if registry is not None and registry.enabled:
            registry.counter("recovery_runs_total").inc()
            registry.gauge("recovery_replayed_steps").set(replayed)
            registry.gauge("recovery_wal_records").set(len(states))
            if truncated:
                registry.counter("recovery_torn_records_total").inc()
        return RecoveryReport(
            engine=engine,
            manager=manager,
            replayed_steps=replayed,
            wal_records=len(states),
            truncated=truncated,
            checkpoint_used=checkpoint is not None,
            rule_drift=rule_drift,
        )

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _stub_state(engine, ts: int, index: int):
        from repro.history.state import SystemState

        return SystemState(engine.db.state, (), ts, index=index)

    @staticmethod
    def _restore_items(engine, items: dict) -> None:
        from repro.datamodel.relation import Relation

        for name, payload in sorted(items.items()):
            value = _decode_item(payload)
            if isinstance(value, Relation):
                engine.create_relation(name, value.schema)
            elif isinstance(value, IndexedItem):
                engine.declare_indexed_item(name)
            else:
                engine.declare_item(name, value)
            engine.db._set_state(engine.db.state.with_updates({name: value}))

    @staticmethod
    def _restore_queries(engine, queries: dict) -> None:
        for name, qdef in sorted(queries.items()):
            engine.define_query(name, qdef["params"], qdef["text"])


def recover(
    directory: PathLike,
    setup: Optional[Callable] = None,
    metrics=None,
    strict_rules: bool = True,
) -> RecoveryReport:
    """Convenience wrapper: ``RecoveryManager(directory).recover(...)``."""
    return RecoveryManager(directory).recover(
        setup=setup, metrics=metrics, strict_rules=strict_rules
    )
