"""Checkpoints: one JSON document holding engine + evaluator state.

A checkpoint bounds recovery work — the WAL tail older than the
checkpoint is never re-evaluated.  It captures the engine (clock, state
count, catalog, current state, named queries) and, optionally, the whole
temporal component via :meth:`repro.rules.manager.RuleManager.to_state`
(evaluator states, executed store, firings, pending detached actions,
quarantine bookkeeping).

The write is atomic (:func:`repro.storage.persist.atomic_write_text`): a
crash mid-checkpoint leaves the previous checkpoint intact, which the
fault-injection matrix exercises via the ``mid-checkpoint`` crash point.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.errors import RecoveryError
from repro.recovery.faultinject import MID_CHECKPOINT
from repro.storage.persist import _encode_item, atomic_write_text

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def write_checkpoint(
    path: PathLike, engine, manager=None, injector=None
) -> dict:
    """Atomically write a checkpoint of ``engine`` (and ``manager``) to
    ``path``; returns the payload that was written."""
    state = engine.db.state
    last = engine.last_state
    payload = {
        "format": FORMAT_VERSION,
        "clock": engine.now,
        "state_count": engine.state_count,
        "last": None if last is None else [last.timestamp, last.index],
        "items": {
            name: _encode_item(state.raw_item(name))
            for name in state.item_names()
        },
        "queries": {
            name: {
                "params": list(engine.db.queries.get(name).params),
                "text": str(engine.db.queries.get(name).body),
            }
            for name in engine.db.queries.names()
        },
        "manager": None if manager is None else manager.to_state(),
        "manager_kind": None if manager is None else type(manager).__name__,
    }
    tiered = getattr(engine, "tiered", None)
    if tiered is not None:
        # Seal the tiered history's in-memory tail into segments and
        # reference every live segment by (name, sha256) fingerprint:
        # recovery restores the spilled run bit-identically or refuses.
        payload["tiers"] = tiered.archive()
    text = json.dumps(payload, sort_keys=True)
    before_replace = None
    if injector is not None:
        def before_replace(tmp: str) -> None:
            injector.hit(MID_CHECKPOINT)
    atomic_write_text(path, text, before_replace=before_replace)
    registry = getattr(engine, "metrics", None)
    if registry is not None and registry.enabled:
        registry.counter("recovery_checkpoints_total").inc()
        registry.gauge("recovery_checkpoint_bytes").set(len(text))
    return payload


def read_checkpoint(path: PathLike) -> Optional[dict]:
    """Load a checkpoint; ``None`` if ``path`` does not exist."""
    target = Path(path)
    if not target.exists():
        return None
    try:
        payload = json.loads(target.read_text())
    except json.JSONDecodeError as exc:
        raise RecoveryError(
            f"unreadable checkpoint {str(path)!r}: {exc}"
        ) from exc
    if payload.get("format") != FORMAT_VERSION:
        raise RecoveryError(
            f"unsupported checkpoint format {payload.get('format')!r}"
        )
    return payload
