"""repro — reproduction of Sistla & Wolfson (SIGMOD 1995).

Past Temporal Logic (PTL) conditions, an incremental evaluation algorithm,
temporal aggregates, composite/temporal actions, and valid-time semantics,
over an in-memory active relational database engine.

Public API highlights
---------------------
- :mod:`repro.datamodel` — schemas, rows, relations.
- :mod:`repro.storage` — the database engine and transactions.
- :mod:`repro.ptl` — the PTL language and evaluators.
- :mod:`repro.rules` — triggers, integrity constraints, the rule manager.
- :mod:`repro.validtime` — the valid-time model.
"""

__version__ = "1.0.0"

from repro.engine import ActiveDatabase
from repro.facade import TemporalDatabase

__all__ = ["ActiveDatabase", "TemporalDatabase", "__version__"]
