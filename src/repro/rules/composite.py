"""Temporal and composite actions via the ``executed`` predicate (Section 7).

"A composite action is specified by a set of atomic actions together with a
partial order on them and a set of timing constraints on their execution."
The compilation is the paper's: the first action runs off the original
condition; each follow-up action runs off a rule whose condition matches
the predecessor's execution record at the required time offset::

    r1 : C(x) -> A1(x)
    r2 : executed(r1, x, t) & time = t + 10 -> A2(x)

and the periodic form::

    r1 : C -> A
    r2 : executed(r1, t) & (time - t <= 60) & (time - t) mod 10 = 0 -> A

Exact-time conditions (``time = t + 10``) fire at the system state whose
timestamp is exactly ``t + 10`` — drive the clock with ``engine.tick()``
(or any event) at the relevant instants, as the paper's model assumes a
state per event occurrence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.errors import RuleError
from repro.ptl import ast
from repro.ptl.rewrite import TIME_TERM
from repro.rules.actions import Action, as_action
from repro.rules.rule import FireMode, Rule

_TIME_VAR = "__t"


def _executed_at_offset(
    rule_name: str,
    params: tuple[str, ...],
    offset: int,
    comparator: str = "=",
) -> ast.Formula:
    """``executed(rule, params..., t) & time <cmp> t + offset``."""
    executed = ast.ExecutedAtom(
        rule_name,
        tuple(ast.Var(p) for p in params),
        ast.Var(_TIME_VAR),
    )
    timing = ast.Comparison(
        comparator,
        TIME_TERM,
        ast.FuncT("+", (ast.Var(_TIME_VAR), ast.ConstT(offset))),
    )
    return ast.And((executed, timing))


def add_sequence(
    manager,
    name: str,
    condition,
    steps: Sequence[tuple[Union[Action, callable], int]],
    params: Sequence[str] = (),
    domains=None,
) -> list[Rule]:
    """A sequential composite action: ``steps`` is a list of
    (action, delay) pairs; the first step runs when ``condition`` first
    becomes satisfied (rising edge), each later step runs ``delay`` time
    units after the previous step executed.  ``params`` are condition
    variables passed along the chain (the paper's A(x) decomposition).

    Returns the generated rules, named ``{name}__s0 .. {name}__sN``.
    """
    if not steps:
        raise RuleError("a sequence needs at least one step")
    params = tuple(params)
    rules = []
    first_action, _ = steps[0]
    rules.append(
        manager.add_trigger(
            f"{name}__s0",
            condition,
            as_action(first_action),
            params=params,
            domains=domains,
            fire_mode=FireMode.RISING_EDGE,
        )
    )
    for k, (action, delay) in enumerate(steps[1:], start=1):
        prev = f"{name}__s{k - 1}"
        cond = _executed_at_offset(prev, params, delay)
        rules.append(
            manager.add_trigger(
                f"{name}__s{k}",
                cond,
                as_action(action),
                params=params,
            )
        )
    return rules


def add_periodic(
    manager,
    name: str,
    condition,
    action,
    period: int,
    horizon: int,
    params: Sequence[str] = (),
    domains=None,
) -> list[Rule]:
    """The paper's temporal action: when ``condition`` becomes satisfied,
    execute ``action`` immediately and then every ``period`` time units for
    the next ``horizon`` time units (e.g. buy 50 IBM stocks every 10
    minutes for an hour while driving the price up slowly)."""
    params = tuple(params)
    arm = manager.add_trigger(
        f"{name}__arm",
        condition,
        as_action(action),
        params=params,
        domains=domains,
        fire_mode=FireMode.RISING_EDGE,
    )
    executed = ast.ExecutedAtom(
        f"{name}__arm",
        tuple(ast.Var(p) for p in params),
        ast.Var(_TIME_VAR),
    )
    elapsed = ast.FuncT("-", (TIME_TERM, ast.Var(_TIME_VAR)))
    within = ast.Comparison("<=", elapsed, ast.ConstT(horizon))
    on_beat = ast.Comparison(
        "=", ast.FuncT("mod", (elapsed, ast.ConstT(period))), ast.ConstT(0)
    )
    repeat = manager.add_trigger(
        f"{name}__repeat",
        ast.And((executed, within, on_beat)),
        as_action(action),
        params=params,
        record_executions=False,
    )
    return [arm, repeat]


@dataclass(frozen=True)
class CompositeStep:
    """One atomic action of a composite action."""

    label: str
    action: Action
    #: Predecessor step label (None = runs off the main condition).
    after: Optional[str] = None
    #: Delay relative to the predecessor's execution.
    delay: int = 0


def add_composite(
    manager,
    name: str,
    condition,
    steps: Sequence[CompositeStep],
    params: Sequence[str] = (),
    domains=None,
) -> list[Rule]:
    """A composite action with a (forest-shaped) partial order and timing
    constraints: every step has at most one predecessor.  Root steps run
    when ``condition`` first becomes satisfied; each dependent step runs
    ``delay`` units after its predecessor executed."""
    params = tuple(params)
    by_label = {s.label: s for s in steps}
    for s in steps:
        if s.after is not None and s.after not in by_label:
            raise RuleError(f"step {s.label!r} depends on unknown {s.after!r}")
    rules = []
    for s in steps:
        rule_name = f"{name}__{s.label}"
        if s.after is None:
            rules.append(
                manager.add_trigger(
                    rule_name,
                    condition,
                    s.action,
                    params=params,
                    domains=domains,
                    fire_mode=FireMode.RISING_EDGE,
                )
            )
        else:
            cond = _executed_at_offset(f"{name}__{s.after}", params, s.delay)
            rules.append(
                manager.add_trigger(
                    rule_name, cond, s.action, params=params
                )
            )
    return rules
