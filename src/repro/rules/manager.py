"""The rule manager — the paper's *temporal component* (Sections 3, 8).

"Whenever an event occurs the database management system invokes the
temporal component, i.e. a system that executes the temporal condition
evaluation algorithm for each trigger."  The manager:

* subscribes to the engine's event bus and steps every registered rule's
  incremental evaluator on each new system state;
* enforces integrity constraints at the ``attempts_to_commit`` event by
  *trial evaluation* (snapshot -> step candidate -> restore), vetoing the
  commit when the IC condition (``attempts_to_commit(X) & !c``) fires;
* executes trigger actions according to their coupling mode, records
  executions in the ``executed`` store (Section 7), and garbage-collects
  records past their retention;
* implements the Section 8 optimizations: *relevance filtering* (rules
  considered only when their events occur — automatically inferred only
  for stateless, event-guarded conditions, where it is sound) and
  *batched invocation* ("trigger firing may be delayed, but not go
  unrecognized").
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.errors import (
    DuplicateRuleError,
    HistoryError,
    RecoveryError,
    RuleError,
    UnknownRuleError,
)
from repro.obs.metrics import NULL_REGISTRY, as_registry
from repro.obs.trace import (
    ACTION,
    ACTION_FAILURE,
    FIRING,
    IC_VIOLATION,
    LIFECYCLE,
    MONITOR,
    SHADOW_FIRING,
    as_trace,
)
from repro.ptl import ast
from repro.ptl.aggregates import RewrittenEvaluator
from repro.ptl.context import EvalContext, ExecutedStore
from repro.ptl.incremental import IncrementalEvaluator
from repro.ptl.parser import parse_formula
from repro.ptl.plan import PlanBoundEvaluator, SharedPlan
from repro.ptl.rewrite import normalize
from repro.ptl.safety import check_safety
from repro.query.parser import parse_query
from repro.rules.actions import Action, ActionContext, as_action
from repro.rules.rule import (
    CouplingMode,
    FireMode,
    FiringRecord,
    Rule,
    make_integrity_constraint,
)

ConditionLike = Union[str, ast.Formula]


class _RegisteredMonitor:
    """A future-obligation monitor attached to the manager (extension)."""

    __slots__ = (
        "name",
        "formula",
        "monitor",
        "on_satisfied",
        "on_violated",
        "respawn",
        "resolutions",
        "_ctx",
    )

    def __init__(self, name, formula, ctx, on_satisfied, on_violated, respawn):
        from repro.ptl.future import FutureMonitor

        self.name = name
        self.formula = formula
        self._ctx = ctx
        self.monitor = FutureMonitor(formula, ctx)
        self.on_satisfied = on_satisfied
        self.on_violated = on_violated
        self.respawn = respawn
        #: (verdict, timestamp) per resolution.
        self.resolutions: list[tuple[str, int]] = []

    def step(self, state, engine):
        from repro.ptl.future import FutureMonitor, Verdict

        already_resolved = self.monitor.verdict is not Verdict.PENDING
        verdict = self.monitor.step(state)
        if verdict is Verdict.PENDING or already_resolved:
            return
        self.resolutions.append((verdict.value, state.timestamp))
        callback = (
            self.on_satisfied
            if verdict is Verdict.SATISFIED
            else self.on_violated
        )
        if callback is not None:
            callback.execute(ActionContext(engine, {}, state, self.name))
        if self.respawn:
            # a fresh obligation starts with the next state
            self.monitor = FutureMonitor(self.formula, self._ctx)


def infer_relevant_events(formula: ast.Formula) -> Optional[frozenset[str]]:
    """Event names that gate a *stateless* condition.

    Sound only when the condition has no temporal operators or aggregates
    (its evaluator carries no state across steps, so skipping states
    cannot corrupt it) and is a conjunction with at least one top-level
    event atom (so states without those events cannot satisfy it).
    Returns None when filtering would be unsound.
    """
    for sub in ast.walk(formula):
        if isinstance(sub, (ast.Since, ast.Lasttime, ast.Previously, ast.ThroughoutPast)):
            return None
    for agg in ast.aggregate_terms(formula):
        return None
    if isinstance(formula, ast.EventAtom):
        return frozenset({formula.name})
    if isinstance(formula, ast.And):
        names = {
            c.name for c in formula.operands if isinstance(c, ast.EventAtom)
        }
        if names:
            return frozenset(names)
    return None


def apply_fire_mode(
    fire_mode: FireMode, result, prev_bindings: frozenset
) -> tuple[list[dict], frozenset]:
    """Turn an evaluator :class:`~repro.ptl.incremental.FireResult` into
    the bindings that actually fire, given the rule's fire mode and its
    previous binding set.  Returns ``(bindings, new_prev_bindings)``.

    Shared between the in-process rule registry and the shard workers
    (:mod:`repro.parallel.worker`) so both backends apply rising-edge
    semantics identically."""
    bindings = [dict(b) for b in result.bindings] if result.fired else []
    if fire_mode is FireMode.RISING_EDGE:
        current = frozenset(
            tuple(sorted(b.items(), key=lambda kv: kv[0])) for b in bindings
        )
        fresh = current - prev_bindings
        return [dict(t) for t in sorted(fresh)], current
    if result.fired:
        return bindings, frozenset(
            tuple(sorted(b.items(), key=lambda kv: kv[0])) for b in bindings
        )
    return bindings, frozenset()


@dataclass
class RuleStats:
    evaluations: int = 0
    skips: int = 0
    firings: int = 0


class _RegisteredRule:
    __slots__ = (
        "rule",
        "evaluator",
        "stats",
        "_prev_bindings",
        "stateless",
        "birth",
        "m_firings",
        "m_eval_seconds",
        "m_action_seconds",
        "m_skips",
        "m_shadow_firings",
    )

    def __init__(
        self,
        rule: Rule,
        evaluator,
        stateless: bool,
        registry=None,
        birth: int = 0,
    ):
        self.rule = rule
        self.evaluator = evaluator
        self.stats = RuleStats()
        self.stateless = stateless
        self._prev_bindings: frozenset = frozenset()
        #: ``states_seen`` at registration — a hot-added rule's firings
        #: can only start here (recorded in manager-2 checkpoints).
        self.birth = birth
        registry = registry or NULL_REGISTRY
        name = rule.name
        self.m_firings = registry.counter("rule_firings_total", rule=name)
        self.m_eval_seconds = registry.histogram("rule_eval_seconds", rule=name)
        self.m_action_seconds = registry.histogram(
            "rule_action_seconds", rule=name
        )
        self.m_skips = registry.counter("rule_skips_total", rule=name)
        self.m_shadow_firings = (
            registry.counter("shadow_firings_total", rule=name)
            if rule.shadow
            else None
        )

    def step(self, state):
        result = self.evaluator.step(state)
        self.stats.evaluations += 1
        bindings, self._prev_bindings = apply_fire_mode(
            self.rule.fire_mode, result, self._prev_bindings
        )
        return bindings


class RuleManager:
    """The temporal component, attached to one
    :class:`~repro.engine.ActiveDatabase`."""

    def __init__(
        self,
        engine,
        relevance_filtering: bool = False,
        batch_size: int = 1,
        executed_retention: Optional[int] = None,
        metrics=None,
        trace=None,
        shared_plan: bool = True,
        isolate_action_failures: bool = False,
        action_retries: int = 0,
        quarantine_after: Optional[int] = 3,
    ):
        """``metrics`` is ``None`` (inherit the engine's registry — the
        no-op registry unless the engine was built with one), ``True``, or
        a :class:`~repro.obs.metrics.MetricsRegistry`; ``trace`` likewise
        resolves to a :class:`~repro.obs.trace.TraceSink`.

        With ``shared_plan=True`` (the default) trigger conditions are
        compiled into one :class:`~repro.ptl.plan.SharedPlan` with
        common-subformula elimination, so overlapping conditions are
        evaluated once per state instead of once per rule;
        ``shared_plan=False`` keeps one independent
        :class:`IncrementalEvaluator` per rule (the pre-plan behaviour,
        and the baseline benchmark E11 compares against).  Integrity
        constraints and ``rewrite_aggregates`` rules always get their own
        evaluators (IC trial evaluation must not touch shared state).

        ``isolate_action_failures=True`` contains a raising trigger action
        to its own rule: the exception is recorded (a ``"failed"``
        execution record, the ``action_failures_total`` counter, an
        ``action_failure`` trace event) instead of propagating, so one
        broken action cannot lose or duplicate other rules' firings.  A
        failing action is first retried ``action_retries`` times, and a
        rule whose action fails ``quarantine_after`` times is quarantined
        — its firings are still recorded, its action no longer runs
        (``None`` disables quarantining).  Integrity constraints are
        unaffected either way: their abort(X) is enforced as a commit
        veto, never as an executed action, so the tightly-coupled TCA
        abort semantics survive isolation."""
        self.engine = engine
        self.relevance_filtering = relevance_filtering
        self.batch_size = max(1, batch_size)
        self.executed_retention = executed_retention
        self.executed = ExecutedStore()
        if metrics is None:
            self.metrics = getattr(engine, "metrics", NULL_REGISTRY)
        else:
            self.metrics = as_registry(metrics)
        self.trace = as_trace(trace)
        self.plan: Optional[SharedPlan] = (
            SharedPlan(
                EvalContext(executed=self.executed), metrics=self.metrics
            )
            if shared_plan
            else None
        )
        self.isolate_action_failures = isolate_action_failures
        self.action_retries = max(0, action_retries)
        self.quarantine_after = quarantine_after
        self._obs_on = self.metrics.enabled or self.trace.enabled
        self._m_states = self.metrics.counter("manager_states_total")
        self._m_pending = self.metrics.gauge("manager_pending_actions")
        self._m_batch = self.metrics.gauge("manager_batch_depth")
        self._m_state_size = self.metrics.gauge("manager_state_size")
        self._m_quarantined = self.metrics.gauge("rules_quarantined")
        self._m_shadow = self.metrics.gauge("rules_shadow")

        self._rules: dict[str, _RegisteredRule] = {}
        self._ics: dict[str, _RegisteredRule] = {}
        self._monitors: dict[str, _RegisteredMonitor] = {}
        self._firings: list[FiringRecord] = []
        self._pending_actions: list[tuple[Rule, dict, Any]] = []
        self._queue: list = []
        self._batch: list = []
        self._draining = False
        self._validator_installed = False
        self.states_seen = 0
        #: Consecutive-failure count per rule and the quarantined set.
        self._action_failures: dict[str, int] = {}
        self._quarantined: set[str] = set()
        #: True while crash recovery replays the WAL tail: firings and
        #: execution records are reproduced, actions are suppressed (they
        #: already ran — or deliberately never will — before the crash).
        self._replaying = False

        self._subscription = engine.bus.subscribe(self._on_state)
        # Group-commit hook: while the engine holds a batch open, trigger
        # processing is deferred; the engine calls back (post-fsync) when
        # the batch is durable.
        self._batch_listener = self._on_batch_end
        listeners = getattr(engine, "batch_listeners", None)
        if listeners is not None:
            listeners.append(self._batch_listener)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def _parse_condition(self, condition: ConditionLike) -> ast.Formula:
        if isinstance(condition, ast.Formula):
            return condition
        items = set()
        state = self.engine.db.state
        for name in state.item_names():
            if not state.has_relation(name):
                items.add(name)
        return parse_formula(condition, self.engine.db.queries, items)

    def _parse_domains(self, domains) -> dict:
        out = {}
        for name, spec in (domains or {}).items():
            if isinstance(spec, str):
                spec = parse_query(spec)
            out[name] = spec
        return out

    def _lifecycle_sync(self, op: str, name: str) -> None:
        """Bring the manager to a consistent stream position before a
        rule-base change: batched states are evaluated first, so the
        change takes effect strictly *after* every state already
        ingested.  Inside an open engine ingest batch the held-back
        states are not yet durable (WAL-before-actions), so a change
        there is rejected rather than flushed early."""
        if self._batch and getattr(self.engine, "in_batch", False):
            raise RuleError(
                f"cannot {op} rule {name!r} inside an open ingest batch "
                "(states pending group commit); close the batch first"
            )
        if self._batch:
            self.flush()

    def add_trigger(
        self,
        name: str,
        condition: ConditionLike,
        action,
        params: Sequence[str] = (),
        domains: Optional[Mapping] = None,
        coupling: CouplingMode = CouplingMode.T_CA,
        fire_mode: FireMode = FireMode.ALWAYS,
        relevant_events: Optional[Iterable[str]] = None,
        rewrite_aggregates: bool = False,
        record_executions: bool = True,
        priority: int = 0,
        shadow: bool = False,
    ) -> Rule:
        """Register a trigger; the condition may be PTL text or a formula.

        ``priority`` orders evaluation and action execution within one
        state (higher first; ties by registration order).

        Registration works on a live manager (hot add): the condition's
        temporal operators start from "now" — the rule behaves exactly
        like the same rule on a fresh engine fed only the states ingested
        after registration.  With ``shadow=True`` the rule is deployed in
        shadow mode: its condition evaluates and firings are recorded and
        traced (``shadow_firings_total``), but the action never runs and
        nothing enters the executed store until :meth:`promote_rule`.
        """
        if name in self._rules or name in self._ics or name in self._monitors:
            raise DuplicateRuleError(f"rule {name!r} already registered")
        self._lifecycle_sync("register", name)
        formula = self._parse_condition(condition)
        domain_map = self._parse_domains(domains)
        check_safety(formula, domain_map.keys())
        rule = Rule(
            name=name,
            condition=formula,
            action=as_action(action),
            params=tuple(params),
            coupling=coupling,
            fire_mode=fire_mode,
            relevant_events=(
                frozenset(relevant_events) if relevant_events is not None else None
            ),
            rewrite_aggregates=rewrite_aggregates,
            record_executions=record_executions,
            priority=priority,
            shadow=shadow,
        )
        ctx = EvalContext(executed=self.executed, domains=domain_map)
        if rewrite_aggregates:
            evaluator = RewrittenEvaluator(
                formula, ctx, metrics=self.metrics, name=name
            )
        elif self.plan is not None:
            evaluator = self.plan.add_rule(name, formula, ctx)
        else:
            evaluator = IncrementalEvaluator(
                formula, ctx, metrics=self.metrics, name=name
            )
        stateless = infer_relevant_events(formula) is not None
        registered = _RegisteredRule(
            rule,
            evaluator,
            stateless,
            registry=self.metrics,
            birth=self.states_seen,
        )
        if (
            rule.relevant_events is None
            and self.relevance_filtering
        ):
            inferred = infer_relevant_events(formula)
            if inferred is not None:
                rule.relevant_events = inferred
        self._rules[name] = registered
        if self._obs_on:
            if self.states_seen > 0:
                self.metrics.counter("rules_added_live_total").inc()
            self._m_shadow.set(len(self.shadow_rules()))
            self.trace.emit(
                LIFECYCLE,
                op="add",
                rule=name,
                shadow=shadow,
                birth=registered.birth,
            )
        return rule

    def add_integrity_constraint(
        self,
        name: str,
        constraint: ConditionLike,
        domains: Optional[Mapping] = None,
    ) -> Rule:
        """Register a temporal integrity constraint (Section 3): the
        condition must hold at every commit point; violating transactions
        are aborted."""
        if name in self._rules or name in self._ics or name in self._monitors:
            raise DuplicateRuleError(f"rule {name!r} already registered")
        formula = self._parse_condition(constraint)
        domain_map = self._parse_domains(domains)
        rule = make_integrity_constraint(name, formula)
        check_safety(rule.condition, domain_map.keys())
        ctx = EvalContext(executed=self.executed, domains=domain_map)
        evaluator = IncrementalEvaluator(
            rule.condition, ctx, metrics=self.metrics, name=name
        )
        self._ics[name] = _RegisteredRule(
            rule, evaluator, stateless=False, registry=self.metrics
        )
        if not self._validator_installed:
            self.engine.add_commit_validator(self._validate)
            self._validator_installed = True
        return rule

    def add_future_monitor(
        self,
        name: str,
        formula,
        on_satisfied=None,
        on_violated=None,
        respawn: bool = False,
    ) -> "_RegisteredMonitor":
        """Attach a future-obligation monitor (the future-operator
        extension): ``formula`` is an FFormula or future-syntax text
        (``"always (!@req | eventually[5] @ack)"``).  The matching
        callback action runs when the obligation resolves; with
        ``respawn=True`` a fresh monitor starts at the next state
        (continuous enforcement)."""
        from repro.ptl.future import FFormula
        from repro.ptl.future_parser import parse_future_formula

        if name in self._rules or name in self._ics or name in self._monitors:
            raise DuplicateRuleError(f"rule {name!r} already registered")
        if not isinstance(formula, FFormula):
            items = {
                n
                for n in self.engine.db.state.item_names()
                if not self.engine.db.state.has_relation(n)
            }
            formula = parse_future_formula(
                formula, self.engine.db.queries, items
            )
        ctx = EvalContext(executed=self.executed)
        registered = _RegisteredMonitor(
            name,
            formula,
            ctx,
            None if on_satisfied is None else as_action(on_satisfied),
            None if on_violated is None else as_action(on_violated),
            respawn,
        )
        self._monitors[name] = registered
        return registered

    def monitor_resolutions(self, name: str) -> list[tuple[str, int]]:
        if name not in self._monitors:
            raise UnknownRuleError(f"no monitor named {name!r}")
        return list(self._monitors[name].resolutions)

    def remove_rule(self, name: str) -> None:
        """Unregister a trigger, integrity constraint, or monitor.  Works
        on a live manager: batched states are evaluated first, then the
        rule's evaluator state (including its share of the plan DAG) is
        released, its queued detached actions are dropped, and its
        quarantine bookkeeping is cleared.  Past firings and execution
        records stay."""
        if (
            name not in self._rules
            and name not in self._ics
            and name not in self._monitors
        ):
            raise UnknownRuleError(f"no rule named {name!r}")
        self._lifecycle_sync("remove", name)
        if name in self._rules:
            reg = self._rules.pop(name)
            if self.plan is not None and isinstance(
                reg.evaluator, PlanBoundEvaluator
            ):
                self.plan.remove_rule(name)
            self._pending_actions = [
                p for p in self._pending_actions if p[0].name != name
            ]
        elif name in self._ics:
            del self._ics[name]
        elif name in self._monitors:
            del self._monitors[name]
        self._action_failures.pop(name, None)
        self._quarantined.discard(name)
        if self._obs_on:
            if self.states_seen > 0:
                self.metrics.counter("rules_removed_live_total").inc()
            self._m_shadow.set(len(self.shadow_rules()))
            self._m_quarantined.set(len(self._quarantined))
            self._m_pending.set(len(self._pending_actions))
            self.trace.emit(LIFECYCLE, op="remove", rule=name)

    def replace_rule(
        self, name: str, condition: ConditionLike, action, **kwargs
    ) -> Rule:
        """Atomically swap a trigger's definition: remove + re-register
        under the same name, between two states.  The new condition's
        temporal operators start from "now" (no state carries over, even
        if the condition text is unchanged).  ``kwargs`` are
        :meth:`add_trigger`'s."""
        if name not in self._rules:
            raise UnknownRuleError(f"no trigger named {name!r}")
        self.remove_rule(name)
        rule = self.add_trigger(name, condition, action, **kwargs)
        if self._obs_on:
            self.metrics.counter("rules_replaced_total").inc()
            self.trace.emit(
                LIFECYCLE, op="replace", rule=name,
                shadow=rule.shadow,
            )
        return rule

    def promote_rule(self, name: str) -> None:
        """Flip a shadow rule live: from the next state on, its firings
        execute the action and enter the executed store.  Idempotent on
        an already-live rule; unknown names raise
        :class:`UnknownRuleError`."""
        if name not in self._rules:
            raise UnknownRuleError(f"no trigger named {name!r}")
        self._lifecycle_sync("promote", name)
        reg = self._rules[name]
        if not reg.rule.shadow:
            return
        reg.rule.shadow = False
        if self._obs_on:
            self.metrics.counter("rules_promoted_total").inc()
            self._m_shadow.set(len(self.shadow_rules()))
            self.trace.emit(LIFECYCLE, op="promote", rule=name)

    def shadow_rules(self) -> list[str]:
        """Names of triggers currently deployed in shadow mode."""
        return sorted(
            name for name, reg in self._rules.items() if reg.rule.shadow
        )

    def rule_names(self) -> list[str]:
        return sorted(
            list(self._rules) + list(self._ics) + list(self._monitors)
        )

    # ------------------------------------------------------------------
    # Integrity-constraint enforcement (trial evaluation)
    # ------------------------------------------------------------------

    def _validate(self, candidate, txn) -> list[str]:
        violations = []
        for reg in self._ics.values():
            snap = reg.evaluator.snapshot()
            result = reg.evaluator.step(candidate)
            reg.evaluator.restore(snap)
            if result.fired:
                violations.append(
                    f"integrity constraint {reg.rule.name!r} violated"
                )
                if self._obs_on:
                    self.metrics.counter(
                        "ic_violations_total", rule=reg.rule.name
                    ).inc()
                    self.trace.emit(
                        IC_VIOLATION,
                        timestamp=candidate.timestamp,
                        rule=reg.rule.name,
                        txn=txn.id,
                        state_index=candidate.index,
                    )
        return violations

    # ------------------------------------------------------------------
    # State processing
    # ------------------------------------------------------------------

    def _on_state(self, state) -> None:
        self._queue.append(state)
        if self._draining:
            return
        self._draining = True
        try:
            while self._queue:
                next_state = self._queue.pop(0)
                self._process_state(next_state)
        finally:
            self._draining = False

    def _process_state(self, state) -> None:
        self.states_seen += 1
        # Integrity constraints are never batched: their evaluators must be
        # current at the next attempts_to_commit.
        for reg in self._ics.values():
            reg.evaluator.step(state)
            reg.stats.evaluations += 1
        self._batch.append(state)
        if self._obs_on:
            self._m_states.inc()
            self._m_batch.set(len(self._batch))
        if len(self._batch) >= self.batch_size and not getattr(
            self.engine, "in_batch", False
        ):
            self.flush()

    def _on_batch_end(self) -> None:
        """The engine finished a group commit (states durable): process
        everything that was held back while the batch was open."""
        if len(self._batch) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Process any batched states now (Section 8: batched invocation
        delays firing but never loses it)."""
        batch, self._batch = self._batch, []
        for state in batch:
            self._step_triggers(state)
        if self.executed_retention is not None and batch:
            horizon = batch[-1].timestamp - self.executed_retention
            self.executed.discard_before(horizon)
        if self._obs_on:
            self._m_batch.set(len(self._batch))
            self._m_state_size.set(self.total_state_size())

    def _ordered_rules(self) -> list[_RegisteredRule]:
        """Registration order, stably re-ordered by descending priority."""
        return sorted(
            self._rules.values(), key=lambda reg: -reg.rule.priority
        )

    def _step_triggers(self, state) -> None:
        obs = self._obs_on
        to_execute: list[tuple[Rule, dict]] = []
        names = state.event_names()
        if self.plan is not None and self.plan.rule_names():
            # One shared evaluation pass for all plan-backed rules, even
            # when relevance filtering skips reading some results below
            # (shared temporal state must see every state).
            self.plan.step(state)
        for reg in self._ordered_rules():
            rule = reg.rule
            if rule.relevant_events is not None and not (
                rule.relevant_events & names
            ):
                reg.stats.skips += 1
                if obs:
                    reg.m_skips.inc()
                continue
            if obs:
                t0 = perf_counter()
                bindings = reg.step(state)
                reg.m_eval_seconds.observe(perf_counter() - t0)
            else:
                bindings = reg.step(state)
            for binding in bindings:
                reg.stats.firings += 1
                record = FiringRecord(
                    rule.name,
                    tuple(sorted(binding.items(), key=lambda kv: kv[0])),
                    state.index,
                    state.timestamp,
                    shadow=rule.shadow,
                )
                self._firings.append(record)
                if obs:
                    reg.m_firings.inc()
                    self.trace.emit(
                        SHADOW_FIRING if rule.shadow else FIRING,
                        timestamp=state.timestamp,
                        rule=rule.name,
                        state_index=state.index,
                        bindings=dict(record.bindings),
                    )
                if rule.shadow:
                    # Shadow deployment: the firing is observable above,
                    # but the action and the executed-store record are
                    # both suppressed — a shadow rule cannot perturb
                    # live behaviour (other rules' executed() atoms).
                    if reg.m_shadow_firings is not None:
                        reg.m_shadow_firings.inc()
                    continue
                if rule.coupling is CouplingMode.T_CA:
                    to_execute.append((rule, binding))
                elif rule.coupling is CouplingMode.T_C_A:
                    self._pending_actions.append((rule, binding, state))
        if obs:
            self._m_pending.set(len(self._pending_actions))
        for rule, binding in to_execute:
            self._execute(rule, binding, state)
        for monitor in list(self._monitors.values()):
            before = len(monitor.resolutions)
            monitor.step(state, self.engine)
            if obs and len(monitor.resolutions) > before:
                verdict, ts = monitor.resolutions[-1]
                self.metrics.counter(
                    "monitor_resolutions_total",
                    monitor=monitor.name,
                    verdict=verdict,
                ).inc()
                self.trace.emit(
                    MONITOR,
                    timestamp=ts,
                    monitor=monitor.name,
                    verdict=verdict,
                )

    def _execute(self, rule: Rule, binding: dict, state) -> None:
        rec = None
        if rule.record_executions:
            params = tuple(binding.get(p) for p in rule.params)
            rec = self.executed.record(rule.name, params, state.timestamp)
        if self._replaying or rule.name in self._quarantined:
            return
        ctx = ActionContext(self.engine, binding, state, rule.name)
        if (
            not self._obs_on
            and not self.isolate_action_failures
            and self.action_retries == 0
        ):
            rule.action.execute(ctx)
            return
        failure = None
        for attempt in range(self.action_retries + 1):
            try:
                t0 = perf_counter()
                rule.action.execute(ctx)
                failure = None
                break
            except Exception as exc:
                # Exception, never BaseException: a simulated (or real)
                # crash must tear through, not be retried or isolated.
                failure = exc
                if attempt < self.action_retries and self._obs_on:
                    self.metrics.counter(
                        "action_retries_total", rule=rule.name
                    ).inc()
        if failure is None:
            if self._obs_on:
                elapsed = perf_counter() - t0
                reg = self._rules.get(rule.name)
                if reg is not None:
                    reg.m_action_seconds.observe(elapsed)
                self.trace.emit(
                    ACTION,
                    timestamp=state.timestamp,
                    rule=rule.name,
                    coupling=rule.coupling.value,
                    seconds=elapsed,
                )
            return
        self._record_action_failure(rule, rec, state, failure)
        if not self.isolate_action_failures:
            raise failure

    def _record_action_failure(self, rule, rec, state, failure) -> None:
        if rec is not None:
            self.executed.mark_failed(rec)
        count = self._action_failures.get(rule.name, 0) + 1
        self._action_failures[rule.name] = count
        quarantined = (
            self.quarantine_after is not None
            and count >= self.quarantine_after
            and self.isolate_action_failures
        )
        if quarantined:
            self._quarantined.add(rule.name)
        if self._obs_on:
            self.metrics.counter(
                "action_failures_total", rule=rule.name
            ).inc()
            self._m_quarantined.set(len(self._quarantined))
            self.trace.emit(
                ACTION_FAILURE,
                timestamp=state.timestamp,
                rule=rule.name,
                coupling=rule.coupling.value,
                error=str(failure),
                failures=count,
                quarantined=quarantined,
            )

    def quarantined_rules(self) -> list[str]:
        """Rules whose actions are suspended after repeated failures."""
        return sorted(self._quarantined)

    def reinstate_rule(self, name: str) -> None:
        """Lift a rule's quarantine and reset its failure count.
        Unknown or never-quarantined names raise
        :class:`UnknownRuleError` (a silent no-op here would mask a
        misspelled operator command)."""
        if name not in self._quarantined:
            raise UnknownRuleError(f"rule {name!r} is not quarantined")
        self._quarantined.discard(name)
        self._action_failures.pop(name, None)
        if self._obs_on:
            self._m_quarantined.set(len(self._quarantined))

    def run_pending(self) -> int:
        """Execute queued T-C-A actions; returns how many ran."""
        pending, self._pending_actions = self._pending_actions, []
        for rule, binding, state in pending:
            self._execute(rule, binding, state)
        if self._obs_on:
            self._m_pending.set(0)
        return len(pending)

    # ------------------------------------------------------------------
    # Checkpoint serialization (crash recovery)
    # ------------------------------------------------------------------

    #: Checkpoint format: 2 ("manager-2") adds per-rule birth epochs,
    #: shadow flags, and condition fingerprints, enabling drift-tolerant
    #: restore (format-1 payloads still load, strictly).
    _STATE_FORMAT = 2

    @staticmethod
    def _encode_pairs(pairs) -> list:
        from repro.ptl.constraints import encode_value

        return [[k, encode_value(v)] for k, v in pairs]

    @staticmethod
    def _decode_pairs(payload) -> tuple:
        from repro.ptl.constraints import decode_value

        return tuple((k, decode_value(v)) for k, v in payload)

    def to_state(self) -> dict:
        """Serialize the temporal component for a recovery checkpoint.

        Everything needed to resume monitoring is captured: evaluator
        states (through the shared plan or per rule), the executed store,
        firing records, per-rule rising-edge memory, queued T-C-A actions,
        and the failure-isolation bookkeeping.  The manager must be
        quiescent — no batched or queued states (call :meth:`flush`
        first).  Restore into a freshly built manager with the *same*
        rules registered (see :meth:`from_state`)."""
        if self._monitors:
            raise RecoveryError(
                "future-obligation monitors are not checkpointable"
            )
        if self._batch or self._queue:
            raise RecoveryError(
                "cannot checkpoint with batched states pending; flush() first"
            )
        rules = {}
        for name, reg in self._rules.items():
            if isinstance(reg.evaluator, RewrittenEvaluator):
                raise RecoveryError(
                    f"rule {name!r} uses rewrite_aggregates; rewritten "
                    "evaluators are not checkpointable (their generated "
                    "item names are process-local) — use the direct "
                    "aggregate pipeline"
                )
            entry = {
                "prev": [
                    self._encode_pairs(t) for t in sorted(reg._prev_bindings)
                ],
                "stats": [
                    reg.stats.evaluations,
                    reg.stats.skips,
                    reg.stats.firings,
                ],
                # Normalized-condition fingerprint + lifecycle facts: the
                # drift-tolerant restore path matches rules on these.
                "formula": str(normalize(reg.rule.condition)),
                "birth": reg.birth,
                "shadow": reg.rule.shadow,
            }
            if not isinstance(reg.evaluator, PlanBoundEvaluator):
                entry["evaluator"] = reg.evaluator.to_state()
            rules[name] = entry
        return {
            "format": self._STATE_FORMAT,
            "states_seen": self.states_seen,
            "executed": self.executed.to_state(),
            "firings": [
                [
                    f.rule,
                    self._encode_pairs(f.bindings),
                    f.state_index,
                    f.timestamp,
                    f.shadow,
                ]
                for f in self._firings
            ],
            "rules": rules,
            "plan": (
                self.plan.to_state()
                if self.plan is not None and self.plan.rule_names()
                else None
            ),
            "ics": {
                name: {
                    "evaluator": reg.evaluator.to_state(),
                    "stats": [
                        reg.stats.evaluations,
                        reg.stats.skips,
                        reg.stats.firings,
                    ],
                    "formula": str(normalize(reg.rule.condition)),
                }
                for name, reg in self._ics.items()
            },
            "pending": [
                [
                    rule.name,
                    self._encode_pairs(sorted(binding.items())),
                    state.index,
                    state.timestamp,
                ]
                for rule, binding, state in self._pending_actions
            ],
            "action_failures": dict(self._action_failures),
            "quarantined": sorted(self._quarantined),
        }

    def from_state(self, payload: dict, strict: bool = True) -> dict:
        """Restore a checkpoint taken by :meth:`to_state`.

        The rules must already be re-registered on this manager and the
        engine must be at the checkpointed state — recovery rebuilds both
        before calling this.  With ``strict=True`` any rule-set drift
        (names or, for format-2 payloads, conditions) raises
        :class:`~repro.errors.RecoveryError`, as before.  With
        ``strict=False`` the *intersection* is restored: rules in both
        the checkpoint and the registration (same condition) get their
        state back — including their checkpointed shadow flag, which wins
        over the re-registration's; rules only registered now start
        fresh at the checkpoint position (a hot add across the crash);
        checkpointed rules no longer registered are dropped along with
        their queued actions.  Returns ``{"added", "dropped",
        "changed"}`` name lists (all empty on a strict restore)."""
        from repro.history.state import SystemState

        fmt = payload.get("format")
        if fmt not in (1, 2):
            raise RecoveryError(
                f"unsupported manager state format {payload.get('format')!r}"
            )
        if self._monitors:
            raise RecoveryError(
                "future-obligation monitors are not checkpointable"
            )
        ck_rules = payload["rules"]
        ck_ics = payload["ics"]
        added = sorted(
            (set(self._rules) - set(ck_rules))
            | (set(self._ics) - set(ck_ics))
        )
        dropped = sorted(
            (set(ck_rules) - set(self._rules))
            | (set(ck_ics) - set(self._ics))
        )
        changed = []
        if fmt >= 2:
            for name in set(ck_rules) & set(self._rules):
                fp = str(normalize(self._rules[name].rule.condition))
                if ck_rules[name]["formula"] != fp:
                    changed.append(name)
            for name in set(ck_ics) & set(self._ics):
                fp = str(normalize(self._ics[name].rule.condition))
                if ck_ics[name]["formula"] != fp:
                    changed.append(name)
        changed = sorted(changed)
        if strict:
            if set(ck_rules) != set(self._rules):
                raise RecoveryError(
                    "checkpointed trigger set "
                    f"{sorted(ck_rules)} != registered "
                    f"{sorted(self._rules)}"
                )
            if set(ck_ics) != set(self._ics):
                raise RecoveryError(
                    "checkpointed integrity-constraint set "
                    f"{sorted(ck_ics)} != registered "
                    f"{sorted(self._ics)}"
                )
            if changed:
                name = changed[0]
                raise RecoveryError(
                    f"rule {name!r} condition differs from the checkpoint"
                )
        elif fmt == 1 and (added or dropped or changed):
            raise RecoveryError(
                "format-1 manager checkpoints record no condition "
                "fingerprints and cannot be restored across rule-set "
                f"drift (added={added}, dropped={dropped})"
            )
        changed_set = set(changed)
        plan_state = payload.get("plan")
        if plan_state is not None and self.plan is None:
            raise RecoveryError(
                "checkpoint used a shared plan; manager has shared_plan=False"
            )
        self.states_seen = payload["states_seen"]
        self.executed.from_state(payload["executed"])
        self._firings = [
            FiringRecord(
                rule,
                self._decode_pairs(bindings),
                index,
                ts,
                bool(rest[0]) if rest else False,
            )
            for rule, bindings, index, ts, *rest in payload["firings"]
        ]
        if plan_state is not None:
            self.plan.from_state(plan_state, strict=strict)
        for name, reg in self._rules.items():
            entry = ck_rules.get(name)
            if entry is None or name in changed_set:
                # Hot-added (or redefined) across the crash: the
                # evaluator starts fresh at the checkpoint position.
                continue
            reg._prev_bindings = frozenset(
                self._decode_pairs(t) for t in entry["prev"]
            )
            ev, sk, fi = entry["stats"]
            reg.stats.evaluations, reg.stats.skips, reg.stats.firings = ev, sk, fi
            if fmt >= 2:
                reg.birth = entry.get("birth", 0)
                reg.rule.shadow = bool(entry.get("shadow", False))
                if reg.rule.shadow and reg.m_shadow_firings is None:
                    reg.m_shadow_firings = self.metrics.counter(
                        "shadow_firings_total", rule=name
                    )
            if "evaluator" in entry:
                if isinstance(reg.evaluator, PlanBoundEvaluator):
                    raise RecoveryError(
                        f"rule {name!r} was checkpointed with an "
                        "independent evaluator but is now plan-backed"
                    )
                reg.evaluator.from_state(entry["evaluator"])
            elif not isinstance(reg.evaluator, PlanBoundEvaluator):
                raise RecoveryError(
                    f"rule {name!r} was checkpointed plan-backed but is "
                    "now independent"
                )
        for name, reg in self._ics.items():
            entry = ck_ics.get(name)
            if entry is None or name in changed_set:
                continue
            reg.evaluator.from_state(entry["evaluator"])
            ev, sk, fi = entry["stats"]
            reg.stats.evaluations, reg.stats.skips, reg.stats.firings = ev, sk, fi
        self._pending_actions = []
        for name, binding, index, ts in payload["pending"]:
            if name not in self._rules:
                if strict:
                    raise RecoveryError(
                        f"pending action for unknown rule {name!r}"
                    )
                continue  # the rule was dropped; its queued actions go too
            # The original SystemState is gone; a queued detached action
            # gets the current committed database under the firing's
            # timestamp/index identity.
            stub = SystemState(
                self.engine.db.state, (), ts, index=index
            )
            self._pending_actions.append(
                (self._rules[name].rule, dict(self._decode_pairs(binding)), stub)
            )
        failures = dict(payload["action_failures"])
        quarantined = set(payload["quarantined"])
        if not strict:
            known = set(self._rules) | set(self._ics)
            failures = {k: v for k, v in failures.items() if k in known}
            quarantined &= known
        self._action_failures = failures
        self._quarantined = quarantined
        if self._obs_on:
            self._m_pending.set(len(self._pending_actions))
            self._m_quarantined.set(len(self._quarantined))
            self._m_shadow.set(len(self.shadow_rules()))
            self._m_state_size.set(self.total_state_size())
        return {"added": added, "dropped": dropped, "changed": changed}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def firings(self) -> list[FiringRecord]:
        return list(self._firings)

    def firings_of(self, rule: str) -> list[FiringRecord]:
        return [f for f in self._firings if f.rule == rule]

    def stats_of(self, rule: str) -> RuleStats:
        if rule in self._rules:
            return self._rules[rule].stats
        if rule in self._ics:
            return self._ics[rule].stats
        raise UnknownRuleError(f"no rule named {rule!r}")

    def explain_firing(self, record: FiringRecord, rendered: bool = False):
        """Why did this firing happen?  Re-evaluates the rule's condition
        at the firing's history position with the reference semantics and
        returns the witness proof tree (:mod:`repro.ptl.explain`).

        ``record`` is a :class:`FiringRecord` — e.g. taken from
        :attr:`firings` or located from a ``firing`` trace event's
        ``rule``/``state_index`` fields.  Needs ``keep_history=True`` on
        the engine.  With ``rendered=True`` returns the indented ✓/✗ text.
        """
        from repro.ptl.explain import explain, render

        history = self.engine.history
        if history is None:
            raise HistoryError("explain_firing needs keep_history=True")
        if record.rule in self._rules:
            reg = self._rules[record.rule]
        elif record.rule in self._ics:
            reg = self._ics[record.rule]
        else:
            raise UnknownRuleError(f"no rule named {record.rule!r}")
        states = history.states
        if not (0 <= record.state_index < len(states)):
            raise HistoryError(
                f"state index {record.state_index} outside the kept history"
            )
        ctx = EvalContext(executed=self.executed)
        explanation = explain(
            states[: record.state_index + 1],
            record.state_index,
            reg.rule.condition,
            env=dict(record.bindings),
            ctx=ctx,
        )
        return render(explanation) if rendered else explanation

    def total_state_size(self) -> int:
        """Retained evaluator state across all rules.  Plan-backed rules
        are counted once through the shared plan (their state *is*
        shared); independent evaluators and ICs add their own."""
        total = 0
        plan_counted = False
        for reg in list(self._rules.values()) + list(self._ics.values()):
            if isinstance(reg.evaluator, PlanBoundEvaluator):
                if not plan_counted:
                    total += self.plan.state_size()
                    plan_counted = True
            else:
                total += reg.evaluator.state_size()
        return total

    def detach(self) -> None:
        """Unsubscribe from the engine (rules stop being evaluated)."""
        self._subscription.cancel()
        listeners = getattr(self.engine, "batch_listeners", None)
        if listeners is not None and self._batch_listener in listeners:
            listeners.remove(self._batch_listener)


#: The paper's name for this component.
TemporalComponent = RuleManager
