"""Actions of Condition-Action rules (Section 3).

"The action part of our C-A rules may be a database operation, a program,
or it may simply be an abort operation on the current transaction.
Furthermore, the action part can refer to some of the free variables
referred to in the condition part."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import ActionError


@dataclass
class ActionContext:
    """What an action sees when it runs: the engine, the satisfying
    bindings of the condition's free variables (parameter passing), and
    the system state that fired the rule."""

    engine: Any
    bindings: Mapping[str, Any]
    state: Any
    rule_name: str


class Action:
    """Base class of rule actions."""

    def execute(self, ctx: ActionContext) -> None:
        raise NotImplementedError


class PyAction(Action):
    """A program as action: an arbitrary callable receiving the context."""

    def __init__(self, fn: Callable[[ActionContext], Any], label: str = ""):
        self.fn = fn
        self.label = label or getattr(fn, "__name__", "callback")

    def execute(self, ctx: ActionContext) -> None:
        try:
            self.fn(ctx)
        except Exception as exc:
            raise ActionError(
                f"action {self.label!r} of rule {ctx.rule_name!r} failed: {exc}"
            ) from exc

    def __repr__(self) -> str:
        return f"PyAction({self.label})"


class DbAction(Action):
    """A database operation as action: runs inside a fresh transaction
    (the rule system's T-CA / T-C-A couplings execute actions as their own
    transactions)."""

    def __init__(self, fn: Callable[[Any, Mapping[str, Any]], Any], label: str = ""):
        self.fn = fn
        self.label = label or getattr(fn, "__name__", "db_action")

    def execute(self, ctx: ActionContext) -> None:
        txn = ctx.engine.begin()
        try:
            self.fn(txn, ctx.bindings)
        except Exception as exc:
            txn.abort(reason=f"action {self.label!r} failed")
            raise ActionError(
                f"action {self.label!r} of rule {ctx.rule_name!r} failed: {exc}"
            ) from exc
        txn.commit()

    def __repr__(self) -> str:
        return f"DbAction({self.label})"


class AbortAction(Action):
    """The integrity-constraint action abort(X).  Never executed directly:
    the rule manager turns a satisfied IC condition into a commit veto."""

    def execute(self, ctx: ActionContext) -> None:
        raise ActionError(
            "abort(X) is enforced at commit validation, not executed"
        )

    def __repr__(self) -> str:
        return "AbortAction()"


class RecordingAction(Action):
    """Test/bench helper: remembers every firing it receives."""

    def __init__(self):
        self.calls: list[tuple[dict, int]] = []

    def execute(self, ctx: ActionContext) -> None:
        self.calls.append((dict(ctx.bindings), ctx.state.timestamp))

    def __repr__(self) -> str:
        return f"RecordingAction({len(self.calls)} calls)"


def as_action(action) -> Action:
    """Coerce a callable into an :class:`Action`."""
    if isinstance(action, Action):
        return action
    if callable(action):
        return PyAction(action)
    raise ActionError(f"not an action: {action!r}")
