"""The rule system: triggers, integrity constraints, composite actions."""

from repro.rules.actions import (
    AbortAction,
    Action,
    ActionContext,
    DbAction,
    PyAction,
    RecordingAction,
    as_action,
)
from repro.rules.composite import (
    CompositeStep,
    add_composite,
    add_periodic,
    add_sequence,
)
from repro.rules.manager import RuleManager, TemporalComponent, infer_relevant_events
from repro.rules.rule import (
    CouplingMode,
    FireMode,
    FiringRecord,
    Rule,
    make_integrity_constraint,
)

__all__ = [
    "Action",
    "ActionContext",
    "PyAction",
    "DbAction",
    "AbortAction",
    "RecordingAction",
    "as_action",
    "Rule",
    "FiringRecord",
    "CouplingMode",
    "FireMode",
    "make_integrity_constraint",
    "RuleManager",
    "TemporalComponent",
    "infer_relevant_events",
    "CompositeStep",
    "add_sequence",
    "add_periodic",
    "add_composite",
]
