"""Rules: triggers and integrity constraints (Section 3).

"A rule is either a trigger or an integrity constraint.  An integrity
constraint is a rule in which the action is abort(X), and the condition
consists of the event attempts_to_commit(X), and the negation of the
integrity constraint. ... A trigger is any other type of rule."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.ptl import ast
from repro.rules.actions import AbortAction, Action


class CouplingMode(enum.Enum):
    """Couplings between rule execution and user transactions (Section 8).

    * ``TCA`` — condition and action execute as part of the user
      transaction, right before commitment (integrity constraints).
    * ``T_CA`` — condition evaluated when the event occurs; the action
      executes immediately, independent of user transactions.
    * ``T_C_A`` — both detached: fired actions are queued and executed
      when the application drains the queue.
    """

    TCA = "TCA"
    T_CA = "T-CA"
    T_C_A = "T-C-A"


class FireMode(enum.Enum):
    """When a satisfied condition triggers the action.

    * ``ALWAYS`` — at every state where the condition is satisfied (the
      paper's semantics: rules are evaluated whenever a new system state
      is added, and fire iff satisfied).
    * ``RISING_EDGE`` — only at states where a binding is satisfied and
      was not satisfied at the previous state (used by the composite-
      action compilation so the first action of a sequence runs once per
      episode).
    """

    ALWAYS = "always"
    RISING_EDGE = "rising_edge"


@dataclass
class Rule:
    """A Condition-Action rule.

    ``params`` names the condition's free variables whose bindings are
    recorded in the ``executed`` store (and passed, in order, as the
    execution record's parameter list).
    """

    name: str
    condition: ast.Formula
    action: Action
    params: tuple[str, ...] = ()
    coupling: CouplingMode = CouplingMode.T_CA
    fire_mode: FireMode = FireMode.ALWAYS
    #: Event names this rule is *relevant* to (Section 8 filtering); None
    #: means the rule is considered at every state.
    relevant_events: Optional[frozenset[str]] = None
    #: Process temporal aggregates by rewriting (Section 6.1.1) instead of
    #: the direct pipeline.
    rewrite_aggregates: bool = False
    #: Record executions of this rule in the executed store.
    record_executions: bool = True
    #: Evaluation/execution order within one state: higher runs first;
    #: ties break by registration order.
    priority: int = 0
    #: Shadow deployment: the condition evaluates (building temporal
    #: state) and firings are recorded/traced, but the action never runs
    #: and nothing enters the executed store.
    #: :meth:`~repro.rules.manager.RuleManager.promote_rule` flips it live.
    shadow: bool = False

    @property
    def is_integrity_constraint(self) -> bool:
        return isinstance(self.action, AbortAction)

    def __str__(self) -> str:
        return f"{self.name}: {self.condition} -> {self.action!r}"


@dataclass(frozen=True)
class FiringRecord:
    """One rule firing: which rule, with which bindings, at which state."""

    rule: str
    bindings: tuple[tuple[str, Any], ...]
    state_index: int
    timestamp: int
    #: True when the rule was in shadow mode: the firing was recorded but
    #: its action was suppressed.
    shadow: bool = False

    @property
    def binding_dict(self) -> dict:
        return dict(self.bindings)


def make_integrity_constraint(
    name: str, constraint: ast.Formula, txn_var: str = "__txn"
) -> Rule:
    """Build the Section 3 integrity-constraint rule: condition
    ``attempts_to_commit(X) & !constraint``, action ``abort(X)``."""
    condition = ast.And(
        (
            ast.EventAtom("attempts_to_commit", (ast.Var(txn_var),)),
            ast.Not(constraint),
        )
    )
    return Rule(
        name=name,
        condition=condition,
        action=AbortAction(),
        params=(txn_var,),
        coupling=CouplingMode.TCA,
        record_executions=False,
    )
