"""Event expressions (the Gehani/Jagadish/Shmueli baseline of Section 10).

"Event expressions are based on regular expressions ... An event
expression is processed by constructing a finite-state automaton.  Since
event expressions use all the operators of regular expressions and also
use negations, it can easily be shown (see [35]) that the size of the
automaton can be superexponential in the length of the event-expression."

This module implements the baseline faithfully enough to measure that
claim (benchmark E8): a regular event-expression language with complement,
compiled via Thompson NFA -> subset-construction DFA (complement
determinizes first), with optional Moore minimization so the size
comparison is fair.

Syntax::

    expr  := alt
    alt   := cat ('|' cat)*
    cat   := rep rep*
    rep   := base ('*' | '?')*
    base  := EVENT_NAME | '(' expr ')' | '!' base     # language complement
           | '.'                                      # any single event
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import EventExprError
from repro.query.lexer import EOF, IDENT, TokenStream, tokenize

# ---------------------------------------------------------------------------
# Expression AST
# ---------------------------------------------------------------------------


class EventExpr:
    __slots__ = ()


@dataclass(frozen=True)
class Atom(EventExpr):
    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class AnyEvent(EventExpr):
    def __str__(self):
        return "."


@dataclass(frozen=True)
class Concat(EventExpr):
    parts: tuple[EventExpr, ...]

    def __str__(self):
        return " ".join(map(str, self.parts))


@dataclass(frozen=True)
class Union(EventExpr):
    parts: tuple[EventExpr, ...]

    def __str__(self):
        return "(" + " | ".join(map(str, self.parts)) + ")"


@dataclass(frozen=True)
class Star(EventExpr):
    inner: EventExpr

    def __str__(self):
        return f"({self.inner})*"


@dataclass(frozen=True)
class Optional_(EventExpr):
    inner: EventExpr

    def __str__(self):
        return f"({self.inner})?"


@dataclass(frozen=True)
class Complement(EventExpr):
    inner: EventExpr

    def __str__(self):
        return f"!({self.inner})"


def parse_event_expr(text: str) -> EventExpr:
    stream = TokenStream(
        tokenize(text, lambda m, p: EventExprError(f"{m} at {p}")),
        lambda m, p: EventExprError(f"{m} at {p}"),
    )
    expr = _parse_alt(stream)
    if stream.current.kind != EOF:
        raise EventExprError(f"trailing input {stream.current.text!r}")
    return expr


def _parse_alt(s) -> EventExpr:
    parts = [_parse_cat(s)]
    while s.at_op("|"):
        s.advance()
        parts.append(_parse_cat(s))
    if len(parts) == 1:
        return parts[0]
    return Union(tuple(parts))


def _parse_cat(s) -> EventExpr:
    parts = [_parse_rep(s)]
    while s.current.kind == IDENT or s.at_op("(", "!", "."):
        parts.append(_parse_rep(s))
    if len(parts) == 1:
        return parts[0]
    return Concat(tuple(parts))


def _parse_rep(s) -> EventExpr:
    base = _parse_base(s)
    while s.at_op("*", "?"):
        if s.advance().text == "*":
            base = Star(base)
        else:
            base = Optional_(base)
    return base


def _parse_base(s) -> EventExpr:
    if s.at_op("!"):
        s.advance()
        return Complement(_parse_rep(s))
    if s.at_op("."):
        s.advance()
        return AnyEvent()
    if s.at_op("("):
        s.advance()
        inner = _parse_alt(s)
        s.expect_op(")")
        return inner
    tok = s.current
    if tok.kind == IDENT:
        s.advance()
        return Atom(tok.text)
    raise EventExprError(f"unexpected token {tok.text!r}")


# ---------------------------------------------------------------------------
# Automata
# ---------------------------------------------------------------------------


class NFA:
    """Thompson-style NFA with epsilon transitions."""

    def __init__(self) -> None:
        self.transitions: list[dict[Optional[str], set[int]]] = []
        self.start = self._new_state()
        self.accepts: set[int] = set()

    def _new_state(self) -> int:
        self.transitions.append({})
        return len(self.transitions) - 1

    def add_edge(self, src: int, symbol: Optional[str], dst: int) -> None:
        self.transitions[src].setdefault(symbol, set()).add(dst)

    def eps_closure(self, states: Iterable[int]) -> frozenset[int]:
        out = set(states)
        stack = list(out)
        while stack:
            s = stack.pop()
            for nxt in self.transitions[s].get(None, ()):
                if nxt not in out:
                    out.add(nxt)
                    stack.append(nxt)
        return frozenset(out)


class DFA:
    """Total deterministic automaton over a fixed alphabet."""

    def __init__(
        self,
        alphabet: Sequence[str],
        transitions: list[dict[str, int]],
        start: int,
        accepts: set[int],
    ):
        self.alphabet = tuple(alphabet)
        self.transitions = transitions
        self.start = start
        self.accepts = set(accepts)

    @property
    def state_count(self) -> int:
        return len(self.transitions)

    def step(self, state: int, symbol: str) -> int:
        row = self.transitions[state]
        if symbol not in row:
            raise EventExprError(
                f"event {symbol!r} outside the declared alphabet"
            )
        return row[symbol]

    def accepts_word(self, word: Sequence[str]) -> bool:
        state = self.start
        for symbol in word:
            state = self.step(state, symbol)
        return state in self.accepts

    def complement(self) -> "DFA":
        return DFA(
            self.alphabet,
            [dict(row) for row in self.transitions],
            self.start,
            set(range(len(self.transitions))) - self.accepts,
        )

    def minimize(self) -> "DFA":
        """Moore partition refinement."""
        n = len(self.transitions)
        partition = [0 if s in self.accepts else 1 for s in range(n)]
        while True:
            signatures: dict[tuple, int] = {}
            next_partition = [0] * n
            for s in range(n):
                sig = (
                    partition[s],
                    tuple(
                        partition[self.transitions[s][a]] for a in self.alphabet
                    ),
                )
                if sig not in signatures:
                    signatures[sig] = len(signatures)
                next_partition[s] = signatures[sig]
            if next_partition == partition:
                break
            partition = next_partition
        blocks = max(partition) + 1
        transitions: list[dict[str, int]] = [dict() for _ in range(blocks)]
        for s in range(n):
            b = partition[s]
            for a in self.alphabet:
                transitions[b][a] = partition[self.transitions[s][a]]
        accepts = {partition[s] for s in self.accepts}
        return DFA(self.alphabet, transitions, partition[self.start], accepts)


def _thompson(expr: EventExpr, alphabet: Sequence[str], nfa: NFA) -> tuple[int, int]:
    """Returns (entry, exit) states for ``expr`` wired into ``nfa``."""
    if isinstance(expr, Atom):
        if expr.name not in alphabet:
            raise EventExprError(
                f"event {expr.name!r} not in alphabet {list(alphabet)}"
            )
        a, b = nfa._new_state(), nfa._new_state()
        nfa.add_edge(a, expr.name, b)
        return a, b
    if isinstance(expr, AnyEvent):
        a, b = nfa._new_state(), nfa._new_state()
        for symbol in alphabet:
            nfa.add_edge(a, symbol, b)
        return a, b
    if isinstance(expr, Concat):
        first_in, prev_out = _thompson(expr.parts[0], alphabet, nfa)
        for part in expr.parts[1:]:
            nxt_in, nxt_out = _thompson(part, alphabet, nfa)
            nfa.add_edge(prev_out, None, nxt_in)
            prev_out = nxt_out
        return first_in, prev_out
    if isinstance(expr, Union):
        a, b = nfa._new_state(), nfa._new_state()
        for part in expr.parts:
            p_in, p_out = _thompson(part, alphabet, nfa)
            nfa.add_edge(a, None, p_in)
            nfa.add_edge(p_out, None, b)
        return a, b
    if isinstance(expr, Star):
        a, b = nfa._new_state(), nfa._new_state()
        p_in, p_out = _thompson(expr.inner, alphabet, nfa)
        nfa.add_edge(a, None, p_in)
        nfa.add_edge(p_out, None, p_in)
        nfa.add_edge(a, None, b)
        nfa.add_edge(p_out, None, b)
        return a, b
    if isinstance(expr, Optional_):
        a, b = nfa._new_state(), nfa._new_state()
        p_in, p_out = _thompson(expr.inner, alphabet, nfa)
        nfa.add_edge(a, None, p_in)
        nfa.add_edge(p_out, None, b)
        nfa.add_edge(a, None, b)
        return a, b
    if isinstance(expr, Complement):
        # complement needs a DFA: compile the inner expression fully,
        # complement, then splice back as a sub-automaton.
        inner_dfa = compile_event_expr(expr.inner, alphabet, minimize=False)
        comp = inner_dfa.complement()
        # embed the DFA into the NFA
        offset_states = {}
        for s in range(comp.state_count):
            offset_states[s] = nfa._new_state()
        exit_state = nfa._new_state()
        for s in range(comp.state_count):
            for symbol, dst in comp.transitions[s].items():
                nfa.add_edge(offset_states[s], symbol, offset_states[dst])
        for s in comp.accepts:
            nfa.add_edge(offset_states[s], None, exit_state)
        return offset_states[comp.start], exit_state
    raise EventExprError(f"unknown expression {expr!r}")


def compile_event_expr(
    expr: "EventExpr | str",
    alphabet: Sequence[str],
    minimize: bool = True,
) -> DFA:
    """Compile an event expression to a (total) DFA over ``alphabet``."""
    if isinstance(expr, str):
        expr = parse_event_expr(expr)
    nfa = NFA()
    entry, exit_state = _thompson(expr, alphabet, nfa)
    nfa.add_edge(nfa.start, None, entry)
    nfa.accepts = {exit_state}

    # subset construction (total: missing transitions go to a dead state)
    alphabet = tuple(alphabet)
    start = nfa.eps_closure({nfa.start})
    index: dict[frozenset, int] = {start: 0}
    transitions: list[dict[str, int]] = [{}]
    queue = [start]
    while queue:
        current = queue.pop()
        src = index[current]
        for symbol in alphabet:
            nxt: set[int] = set()
            for s in current:
                nxt |= nfa.transitions[s].get(symbol, set())
            closed = nfa.eps_closure(nxt)
            if closed not in index:
                index[closed] = len(transitions)
                transitions.append({})
                queue.append(closed)
            transitions[src][symbol] = index[closed]
    accepts = {
        i for subset, i in index.items() if subset & nfa.accepts
    }
    dfa = DFA(alphabet, transitions, 0, accepts)
    if minimize:
        dfa = dfa.minimize()
    return dfa


class EventExprDetector:
    """Incremental detector: feeds each occurring event to the DFA and
    reports acceptance — the EE counterpart of a PTL evaluator for pure
    event-ordering conditions.  Relative timing needs a ``clock_tick``
    event in the alphabet (Section 10 discusses why that is awkward)."""

    def __init__(self, expr: "EventExpr | str", alphabet: Sequence[str]):
        self.dfa = compile_event_expr(expr, alphabet)
        self.state = self.dfa.start
        self.steps = 0

    def feed(self, event_name: str) -> bool:
        self.state = self.dfa.step(self.state, event_name)
        self.steps += 1
        return self.state in self.dfa.accepts

    def step(self, system_state) -> bool:
        """Feed all events of a system state (in sorted-name order)."""
        fired = False
        for name in sorted(e.name for e in system_state.events):
            if name in self.dfa.alphabet:
                fired = self.feed(name)
        return fired

    def state_size(self) -> int:
        return self.dfa.state_count
