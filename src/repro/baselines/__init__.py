"""Baselines: naive full-history detection, event-expression automata."""

from repro.baselines.eventexpr import (
    DFA,
    EventExprDetector,
    compile_event_expr,
    parse_event_expr,
)
from repro.baselines.historyless import HistorylessChecker, in_fragment
from repro.baselines.naive import NaiveDetector

__all__ = [
    "NaiveDetector",
    "EventExprDetector",
    "compile_event_expr",
    "parse_event_expr",
    "DFA",
    "HistorylessChecker",
    "in_fragment",
]
