"""Chomicki-style "history-less" checking — the other Section 10 baseline.

"[1, 2] ... considers a first order temporal logic with past temporal
operators (FPTL) for specifying and maintaining Real-time Dynamic
Integrity Constraints ... FPTL uses first order quantifiers, whereas PTL
uses the assignment operator.  This operator can be viewed as a form of
quantification that naturally ensures safety.  For example, the trigger
condition SHARP-INCREASE ... is natural, but it is considered unsafe and
cannot be handled by the methods in [1, 2]."

This module reproduces that comparison *qualitatively*: a classifier for
the fragment a history-less FPTL checker handles (no assignment operator —
values cannot be captured at one state and compared at another — and no
temporal aggregates), plus a checker for that fragment which, like
Chomicki's method, stores only a bounded number of boolean registers (one
per temporal subformula) rather than any data values from past states.

The expressiveness gap the paper points out is then checkable in code:
``in_fragment(SHARP_INCREASE) is False`` while the PTL evaluator handles
it — see ``tests/test_expressiveness.py`` and benchmark E8.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PTLError
from repro.history.state import SystemState
from repro.ptl import ast
from repro.ptl.context import EvalContext
from repro.ptl.incremental import FireResult, IncrementalEvaluator
from repro.ptl.rewrite import normalize


def in_fragment(formula: ast.Formula) -> bool:
    """Can a history-less FPTL checker handle this condition?

    The fragment excludes exactly what PTL's assignment operator adds:

    * value capture across states (``[x := q] ...`` with ``x`` used under
      a temporal operator) — the essence of SHARP-INCREASE;
    * temporal aggregates (values accumulated over time);
    * free variables (the paper's answer-producing rules).

    Ground temporal formulas over current-state atoms remain — those a
    boolean-register evaluation handles.
    """
    if ast.free_variables(formula):
        return False

    def visit(f: ast.Formula) -> bool:
        if isinstance(f, ast.Assign):
            # value capture: x escapes into the body
            if f.var in f.body.variables():
                return False
            return visit(f.body)
        if isinstance(f, ast.Comparison):
            return not ast.aggregate_terms(f)
        for child in f.children():
            if not visit(child):
                return False
        return True

    return visit(normalize(formula))


class HistorylessChecker:
    """Detector for the history-less fragment.

    Inside the fragment, our incremental evaluator already *is*
    history-less (every stored state formula folds to a boolean), so the
    checker wraps it and asserts that invariant after every step — the
    register count it reports is what a [1,2]-style implementation would
    materialize as auxiliary boolean relations.
    """

    def __init__(self, formula: ast.Formula, ctx: Optional[EvalContext] = None):
        if not in_fragment(formula):
            raise PTLError(
                "condition is outside the history-less fragment (value "
                f"capture, aggregates, or free variables): {formula}"
            )
        self.formula = formula
        self._evaluator = IncrementalEvaluator(formula, ctx)
        self.steps = 0

    def step(self, state: SystemState) -> FireResult:
        result = self._evaluator.step(state)
        self.steps += 1
        return result

    def register_count(self) -> int:
        """Stored booleans — one per temporal subformula."""
        return len(self._evaluator.stored_formulas())

    def state_size(self) -> int:
        return self._evaluator.state_size()
