"""Naive full-history trigger detection — the comparator the paper's
*incremental* algorithm is implicitly measured against.

"The evaluation is incremental in the sense that when a new database state
is created ... the algorithm only considers the changes in the new
database state ... *instead of considering the whole database history*."

The naive detector does consider the whole history: it appends each state
and re-runs the reference (offline) semantics from scratch.  Per-update
cost grows with history length (the ``Since`` check alone walks the whole
prefix), which benchmark E3 measures against the incremental evaluator's
flat per-update cost.
"""

from __future__ import annotations

from typing import Optional

from repro.history.state import SystemState
from repro.ptl import ast
from repro.ptl.context import EvalContext
from repro.ptl.incremental import FireResult
from repro.ptl.semantics import answers


class NaiveDetector:
    """Drop-in replacement for
    :class:`~repro.ptl.incremental.IncrementalEvaluator` with O(history)
    per-update cost."""

    def __init__(
        self,
        formula: ast.Formula,
        ctx: Optional[EvalContext] = None,
    ):
        self.formula = formula
        self.ctx = ctx or EvalContext()
        self.history: list[SystemState] = []
        self.steps = 0

    def step(self, state: SystemState) -> FireResult:
        self.history.append(state)
        self.steps += 1
        found = answers(self.history, len(self.history) - 1, self.formula, self.ctx)
        if not found:
            return FireResult(False)
        return FireResult(True, tuple(found))

    def state_size(self) -> int:
        """The naive detector's 'state' is the entire retained history."""
        return len(self.history)
