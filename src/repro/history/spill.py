"""Tiered history: a memory governor + transparent spill to segments.

ROADMAP item 3: bounded-memory pruning handles time-bounded operators,
but the engine's :class:`~repro.history.history.SystemHistory`, the
``executed`` store, auxiliary-relation versions, and unbounded-``Since``
storage still grow in RAM forever.  This module splits each into a *hot*
recent window kept in memory and an *archival* past spilled to the
checksummed segments of :class:`~repro.storage.tiers.SegmentStore`:

* :class:`MemoryGovernor` — tracks estimated bytes per account against a
  configurable budget;
* :class:`TieredHistory` — a drop-in ``SystemHistory`` whose cold prefix
  lives in segments, faulted back transparently (and lazily) on
  deep-past reads (``as_of``, iteration, ``explain_firing`` walks);
* :class:`TieredRuntime` / :func:`attach_tiered_history` — wires a live
  engine: accounts every appended state, spills when over budget, enters
  the engine's degraded read-only mode when the disk stays unwritable,
  and archives everything at checkpoint time so
  :func:`restore_tiers` can rebuild a spilled run bit-identically.

Unbounded-``Since`` stored formulas are *accounted* (they are consulted
at every step, so spilling them would just move the hot loop to disk);
history states, executed records, and auxiliary-relation versions are
*spilled*.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from pathlib import Path
from typing import Callable, Optional, Union

from repro.errors import HistoryError, StorageError
from repro.events.model import Event
from repro.history.history import SystemHistory
from repro.history.state import SystemState
from repro.obs.metrics import as_registry
from repro.storage.persist import _decode_item, _encode_item, _encode_value
from repro.storage.snapshot import DatabaseState
from repro.storage.tiers import SegmentStore

PathLike = Union[str, Path]

TIERS_FORMAT = 1
#: Default budget before spilling begins (64 MiB of estimated bytes).
DEFAULT_BUDGET = 64 * 1024 * 1024
#: Default number of recent states kept hot in memory.
DEFAULT_HOT_WINDOW = 256
#: Conventional segment subdirectory inside a recovery directory.
SEGMENT_DIR_NAME = "segments"

#: Initial per-unit byte estimates, refined from real segment sizes.
_EST_STATE_BYTES = 512
_EST_EXECUTED_BYTES = 120
_EST_FORMULA_BYTES = 80


# -- state codec (delta chain, self-contained per segment) -----------------


def _encode_state(state: SystemState, prev_db) -> dict:
    rec = {
        "i": state.index,
        "ts": state.timestamp,
        "events": [
            [e.name, [_encode_value(p) for p in e.params]]
            for e in sorted(state.events, key=str)
        ],
        "delta": None if state.delta is None else sorted(state.delta),
    }
    if prev_db is None:
        rec["items"] = {
            name: _encode_item(state.db.raw_item(name))
            for name in state.db.item_names()
        }
    else:
        rec["changes"] = {
            name: _encode_item(state.db.raw_item(name))
            for name in state.db.changed_items(prev_db)
        }
    return rec


def _decode_states(records: list) -> list[SystemState]:
    db = None
    out = []
    for rec in records:
        if "items" in rec:
            db = DatabaseState(
                {n: _decode_item(v) for n, v in rec["items"].items()}
            )
        else:
            changes = {
                n: _decode_item(v) for n, v in rec["changes"].items()
            }
            if changes:
                db = db.with_updates(changes)
        events = [Event(n, tuple(p)) for n, p in rec["events"]]
        delta = (
            None if rec["delta"] is None else frozenset(rec["delta"])
        )
        out.append(
            SystemState(db, events, rec["ts"], index=rec["i"], delta=delta)
        )
    return out


# -- the governor ----------------------------------------------------------


class MemoryGovernor:
    """Byte-budget accounting across the growable stores.

    Accounts are callables returning an *estimated* byte figure; the
    governor sums them against ``budget_bytes`` and the runtime spills
    while :meth:`over_budget`.  Estimates are deliberately cheap (counts
    times a learned average) — the point is a stable trigger, not an
    allocator-grade measurement."""

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET, metrics=None):
        self.budget_bytes = max(0, int(budget_bytes))
        self._accounts: dict[str, Callable[[], int]] = {}
        self.metrics = as_registry(metrics)
        self._m_bytes = self.metrics.gauge("governor_bytes")
        self._m_budget = self.metrics.gauge("governor_budget_bytes")
        self._m_budget.set(self.budget_bytes)

    def register(self, name: str, estimate: Callable[[], int]) -> None:
        self._accounts[name] = estimate

    def unregister(self, name: str) -> None:
        self._accounts.pop(name, None)

    def usage(self) -> dict[str, int]:
        return {name: int(fn()) for name, fn in self._accounts.items()}

    def total(self) -> int:
        total = sum(int(fn()) for fn in self._accounts.values())
        self._m_bytes.set(total)
        return total

    def over_budget(self) -> bool:
        return self.total() > self.budget_bytes

    def __repr__(self) -> str:
        return (
            f"MemoryGovernor({self.total()}/{self.budget_bytes} bytes, "
            f"accounts={sorted(self._accounts)})"
        )


# -- the tiered history ----------------------------------------------------


class TieredHistory(SystemHistory):
    """A system history whose cold prefix lives in on-disk segments.

    Positions ``[0, archived)`` are covered by sealed segments (the
    *catalog*); positions ``[mem_start, total)`` are in memory.  The two
    ranges may overlap after :meth:`archive` (checkpoint flush): reads
    prefer memory, and a later spill advances ``mem_start`` without
    rewriting anything.  The invariant ``mem_start <= archived or
    archived <= mem_start <= archived`` reduces to: no gap — every
    position is in at least one tier.

    ``base_index`` keeps the parent-class meaning (index of the first
    *in-memory* state) and is advanced as states are dropped, so
    :meth:`SystemHistory.append` assigns globally consistent indices
    unchanged."""

    def __init__(
        self,
        store: SegmentStore,
        hot_window: int = DEFAULT_HOT_WINDOW,
        validate_transaction_time: bool = True,
        metrics=None,
        segment_records: int = 2048,
    ):
        super().__init__((), validate_transaction_time)
        self._store = store
        self.hot_window = max(1, int(hot_window))
        self.segment_records = max(16, int(segment_records))
        #: Segment descriptors, in position order; meta carries
        #: first_index/first_ts/last_ts for targeted faulting.
        self._catalog: list[dict] = []
        self._archived = 0  # positions covered by the catalog
        self._mem_start = 0  # position of self._states[0]
        self._cache: Optional[tuple[int, list[SystemState]]] = None
        self._avg_state_bytes = float(_EST_STATE_BYTES)
        self.metrics = as_registry(metrics)
        self._m_spilled_bytes = self.metrics.counter("history_spilled_bytes")
        self._m_spilled = self.metrics.gauge("history_spilled_states")
        self._m_hot = self.metrics.gauge("history_hot_states")
        self._m_faults = self.metrics.counter("history_faults_total")

    # -- sizing ------------------------------------------------------------

    def __len__(self) -> int:
        return self._mem_start + len(self._states)

    @property
    def hot_states(self) -> int:
        return len(self._states)

    @property
    def spilled_states(self) -> int:
        return self._mem_start

    def estimated_hot_bytes(self) -> int:
        return int(len(self._states) * self._avg_state_bytes)

    # -- access ------------------------------------------------------------

    def _norm(self, index: int) -> int:
        total = len(self)
        if index < 0:
            index += total
        if not 0 <= index < total:
            raise IndexError(index)
        return index

    def _segment_for(self, position: int) -> int:
        firsts = [info["meta"]["first_pos"] for info in self._catalog]
        seg = bisect_right(firsts, position) - 1
        if seg < 0:
            raise HistoryError(
                f"position {position} precedes the segment catalog"
            )
        return seg

    def _segment_states(self, seg: int) -> list[SystemState]:
        if self._cache is not None and self._cache[0] == seg:
            return self._cache[1]
        records = self._store.load_segment(self._catalog[seg])
        states = _decode_states(records)
        self._m_faults.inc()
        self._cache = (seg, states)
        return states

    def _state_at(self, position: int) -> SystemState:
        if position >= self._mem_start:
            return self._states[position - self._mem_start]
        seg = self._segment_for(position)
        states = self._segment_states(seg)
        return states[position - self._catalog[seg]["meta"]["first_pos"]]

    def __getitem__(self, index):
        if isinstance(index, slice):
            rng = range(*index.indices(len(self)))
            return SystemHistory(
                (self._state_at(i) for i in rng),
                validate_transaction_time=False,
            )
        return self._state_at(self._norm(index))

    def __iter__(self):
        for seg, info in enumerate(self._catalog):
            if info["meta"]["first_pos"] >= self._mem_start:
                break
            for state, pos in zip(
                self._segment_states(seg),
                itertools.count(info["meta"]["first_pos"]),
            ):
                if pos >= self._mem_start:
                    break
                yield state
        yield from self._states

    @property
    def states(self) -> list[SystemState]:
        return list(self)

    @property
    def last(self) -> Optional[SystemState]:
        if self._states:
            return self._states[-1]
        if not self._catalog:
            return None
        # Freshly restored: the hot window is empty and the newest state
        # lives at the end of the final segment.
        return self._segment_states(len(self._catalog) - 1)[-1]

    def as_of(self, timestamp: int) -> Optional[SystemState]:
        """Latest state at or before ``timestamp``; faults at most one
        segment — the transparent deep-past read path."""
        if self._states and timestamp >= self._states[0].timestamp:
            i = bisect_right(
                self._states, timestamp, key=lambda s: s.timestamp
            )
            return self._states[i - 1] if i else None
        if not self._catalog:
            return None
        firsts = [info["meta"]["first_ts"] for info in self._catalog]
        seg = bisect_right(firsts, timestamp) - 1
        if seg < 0:
            return None
        states = self._segment_states(seg)
        i = bisect_right(states, timestamp, key=lambda s: s.timestamp)
        return states[i - 1] if i else None

    def up_to_time(self, timestamp: int) -> SystemHistory:
        return SystemHistory(
            itertools.takewhile(
                lambda s: s.timestamp <= timestamp, iter(self)
            ),
            validate_transaction_time=False,
        )

    def state_at_time(self, timestamp: int) -> Optional[SystemState]:
        state = self.as_of(timestamp)
        return state if state is not None and state.timestamp == timestamp else None

    def commit_points(self) -> list[int]:
        return [i for i, s in enumerate(self) if s.is_commit_point()]

    # -- spilling ----------------------------------------------------------

    def _archive_to(self, position: int) -> None:
        """Extend catalog coverage to ``position`` (exclusive)."""
        while self._archived < position:
            count = min(
                position - self._archived, self.segment_records
            )
            start = self._archived - self._mem_start
            chunk = self._states[start : start + count]
            records = []
            prev_db = None
            for state in chunk:
                records.append(_encode_state(state, prev_db))
                prev_db = state.db
            info = self._store.write_segment(
                "history",
                records,
                meta={
                    "first_pos": self._archived,
                    "first_index": chunk[0].index,
                    "first_ts": chunk[0].timestamp,
                    "last_ts": chunk[-1].timestamp,
                },
            )
            self._catalog.append(info)
            self._archived += count
            self._m_spilled_bytes.inc(info["bytes"])
            self._avg_state_bytes = (
                0.5 * self._avg_state_bytes
                + 0.5 * (info["bytes"] / max(1, count))
            )

    def spill(self, keep_hot: Optional[int] = None) -> int:
        """Move cold states to segments, keeping the ``keep_hot`` (default
        ``hot_window``) most recent in memory.  Atomic: segments are
        sealed and fsynced before anything leaves memory — an I/O error
        mid-spill loses nothing.  Returns how many states were dropped
        from memory."""
        keep = self.hot_window if keep_hot is None else max(0, keep_hot)
        target = max(0, len(self) - keep)
        if target <= self._mem_start:
            return 0
        self._archive_to(target)
        dropped = target - self._mem_start
        del self._states[: dropped]
        self._mem_start = target
        self.base_index += dropped
        self._m_spilled.set(self._mem_start)
        self._m_hot.set(len(self._states))
        return dropped

    def archive(self) -> dict:
        """Seal *everything* into segments without evicting the hot
        window — the checkpoint flush that makes a spilled run fully
        restorable — and return the tier descriptor for the checkpoint."""
        self._archive_to(len(self))
        return self.tier_state()

    def tier_state(self) -> dict:
        return {
            "format": TIERS_FORMAT,
            "segments": [dict(info) for info in self._catalog],
            "archived": self._archived,
            "hot": [self._mem_start, len(self)],
            "hot_window": self.hot_window,
            # Global index of position 0: positions are local to this
            # history (an engine recovered mid-run keeps only a suffix),
            # so restore() needs the offset to keep indices consistent.
            "index_base": self.base_index - self._mem_start,
        }

    @classmethod
    def restore(
        cls,
        store: SegmentStore,
        tier_state: dict,
        hot_window: Optional[int] = None,
        metrics=None,
        verify: bool = True,
    ) -> "TieredHistory":
        """Rebuild a tiered history from a checkpoint descriptor.

        With ``verify`` (the default) every referenced segment is loaded
        and checked against its fingerprint before use; anything missing
        or mismatched raises :class:`~repro.errors.RecoveryError`, and
        unreferenced segment files (crash debris) are quarantined."""
        if tier_state.get("format") != TIERS_FORMAT:
            raise StorageError(
                f"unsupported tier format {tier_state.get('format')!r}"
            )
        history = cls(
            store,
            hot_window=hot_window or tier_state.get(
                "hot_window", DEFAULT_HOT_WINDOW
            ),
            metrics=metrics,
        )
        history._catalog = [dict(info) for info in tier_state["segments"]]
        history._archived = tier_state["archived"]
        history._mem_start = history._archived
        history.base_index = (
            tier_state.get("index_base", 0) + history._mem_start
        )
        if verify:
            for info in history._catalog:
                store.verify(info)
        history._m_spilled.set(history._mem_start)
        return history


# -- the runtime glue ------------------------------------------------------


class TieredRuntime:
    """Wires a live engine to the governor and the segment store.

    Subscribed on the event bus *behind* the WAL and the rule manager:
    by the time a spill decision runs, the state is durable and the
    temporal component has seen it.  A spill that keeps failing after
    bounded retries puts the engine into degraded read-only mode instead
    of raising into the committing transaction — the commit that
    triggered the spill is already durable; only *future* durable work
    is refused."""

    def __init__(
        self,
        engine,
        store: SegmentStore,
        governor: MemoryGovernor,
        history: TieredHistory,
        manager=None,
        spill_check_every: int = 8,
    ):
        self.engine = engine
        self.store = store
        self.governor = governor
        self.history = history
        self.manager = None
        self.spill_check_every = max(1, spill_check_every)
        self._since_check = 0
        self._aux_stores: list = []
        governor.register("history", history.estimated_hot_bytes)
        if manager is not None:
            self.adopt_manager(manager)
        self._subscription = engine.bus.subscribe(self._on_state)
        engine.tiered = self

    # -- wiring ------------------------------------------------------------

    def adopt_manager(self, manager) -> None:
        """Register the temporal component's growable stores with the
        governor and enable executed-record spilling on it."""
        self.manager = manager
        executed = getattr(manager, "executed", None)
        if executed is not None and hasattr(executed, "enable_spill"):
            executed.enable_spill(self.store)
            pending = getattr(self, "_pending_executed", None)
            if pending:
                executed.restore_tier(pending)
                self._pending_executed = None
            self.governor.register(
                "executed",
                lambda: len(executed) * _EST_EXECUTED_BYTES,
            )
        if hasattr(manager, "total_state_size"):
            self.governor.register(
                "since",
                lambda: manager.total_state_size() * _EST_FORMULA_BYTES,
            )

    def track_aux(self, aux_store) -> None:
        """Account (and spill) an auxiliary-relation store's versions."""
        self._aux_stores.append(aux_store)
        self.governor.register(
            f"aux:{id(aux_store):x}",
            lambda: aux_store.total_rows() * _EST_EXECUTED_BYTES,
        )

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None
        if getattr(self.engine, "tiered", None) is self:
            self.engine.tiered = None

    # -- spill policy ------------------------------------------------------

    def _on_state(self, state) -> None:
        self._since_check += 1
        if self._since_check < self.spill_check_every:
            return
        self._since_check = 0
        self.maybe_spill()

    def _pinned_rules(self) -> frozenset:
        """Rules referenced by ``executed`` atoms in live conditions:
        their records are consulted every step and must stay hot."""
        from repro.ptl.ast import ExecutedAtom, walk

        manager = self.manager
        if manager is None or not hasattr(manager, "_rules"):
            return frozenset()
        pinned = set()
        for reg in list(manager._rules.values()):
            condition = getattr(getattr(reg, "rule", None), "condition", None)
            if condition is None:
                continue
            for sub in walk(condition):
                if isinstance(sub, ExecutedAtom):
                    pinned.add(sub.rule)
        return frozenset(pinned)

    def maybe_spill(self) -> int:
        """Spill cold data while over budget; returns states spilled.

        ``OSError`` surviving the store's retry loop flips the engine to
        degraded read-only mode (nothing is lost — the in-memory copy is
        kept); a :class:`SimulatedCrash` tears through like a real
        crash."""
        if getattr(self.engine, "degraded", False):
            return 0
        if not self.governor.over_budget():
            return 0
        spilled = 0
        try:
            spilled = self.history.spill()
            horizon = (
                self.history._states[0].timestamp
                if self.history._states
                else None
            )
            executed = getattr(self.manager, "executed", None)
            if (
                horizon is not None
                and executed is not None
                and hasattr(executed, "spill_cold")
            ):
                executed.set_pinned(self._pinned_rules())
                executed.spill_cold(horizon)
            for aux in self._aux_stores:
                if horizon is not None and hasattr(aux, "spill_cold"):
                    aux.spill_cold(horizon, self.store)
        except OSError as exc:
            self.engine.enter_degraded(f"history spill failed: {exc}")
        return spilled

    # -- checkpoint integration -------------------------------------------

    def archive(self) -> dict:
        """Flush every tier to sealed segments and return the checkpoint
        descriptor (segment names + fingerprints)."""
        desc = {
            "format": TIERS_FORMAT,
            "history": self.history.archive(),
            "config": {
                "budget_bytes": self.governor.budget_bytes,
                "hot_window": self.history.hot_window,
            },
        }
        executed = getattr(self.manager, "executed", None)
        if executed is not None and hasattr(executed, "tier_state"):
            executed_state = executed.tier_state()
            if executed_state is not None:
                desc["executed"] = executed_state
        return desc

    def probe(self) -> None:
        self.store.probe()


def attach_tiered_history(
    engine,
    directory: PathLike,
    budget_bytes: int = DEFAULT_BUDGET,
    hot_window: int = DEFAULT_HOT_WINDOW,
    manager=None,
    injector=None,
    fsync: bool = True,
    retries: int = 3,
    backoff: float = 0.002,
    spill_check_every: int = 8,
    segment_records: int = 2048,
) -> TieredRuntime:
    """Put ``engine.history`` behind the memory governor.

    Existing states migrate into the hot window of a new
    :class:`TieredHistory`; from here on the runtime spills cold data to
    ``directory`` whenever the governor's budget is exceeded.  Returns
    the :class:`TieredRuntime` (also reachable as ``engine.tiered`` —
    checkpoints use that hook to archive and reference segments)."""
    if engine.history is None:
        raise HistoryError(
            "tiered history needs an engine with keep_history=True"
        )
    store = SegmentStore(
        directory,
        fsync=fsync,
        injector=injector,
        metrics=engine.metrics,
        retries=retries,
        backoff=backoff,
    )
    history = TieredHistory(
        store,
        hot_window=hot_window,
        validate_transaction_time=engine.history.validate_transaction_time,
        metrics=engine.metrics,
        segment_records=segment_records,
    )
    history.base_index = engine.history.base_index
    history._states = list(engine.history._states)
    engine.history = history
    governor = MemoryGovernor(budget_bytes, metrics=engine.metrics)
    return TieredRuntime(
        engine,
        store,
        governor,
        history,
        manager=manager,
        spill_check_every=spill_check_every,
    )


def restore_tiers(
    engine,
    tiers: dict,
    directory: PathLike,
    injector=None,
    verify: bool = True,
) -> TieredRuntime:
    """Rebuild the tiered runtime from a checkpoint's ``tiers`` section
    (fingerprint-verified).  The engine's history becomes a
    :class:`TieredHistory` whose archive is the checkpointed segment set;
    call :meth:`TieredRuntime.adopt_manager` once the rule manager is
    restored to re-link spilled executed records."""
    if tiers.get("format") != TIERS_FORMAT:
        raise StorageError(
            f"unsupported checkpoint tier format {tiers.get('format')!r}"
        )
    config = tiers.get("config", {})
    store = SegmentStore(
        directory, injector=injector, metrics=engine.metrics
    )
    live = [info["name"] for info in tiers["history"]["segments"]]
    executed_state = tiers.get("executed")
    if executed_state:
        live += [info["name"] for info in executed_state["segments"]]
    history = TieredHistory.restore(
        store,
        tiers["history"],
        hot_window=config.get("hot_window"),
        metrics=engine.metrics,
        verify=verify,
    )
    store.quarantine_orphans(live)
    engine.history = history
    governor = MemoryGovernor(
        config.get("budget_bytes", DEFAULT_BUDGET), metrics=engine.metrics
    )
    runtime = TieredRuntime(engine, store, governor, history)
    runtime._pending_executed = executed_state
    return runtime
