"""System states and histories (the paper's Section 2 model)."""

from repro.history.history import SystemHistory
from repro.history.spill import (
    MemoryGovernor,
    TieredHistory,
    TieredRuntime,
    attach_tiered_history,
    restore_tiers,
)
from repro.history.state import SystemState

__all__ = [
    "SystemState",
    "SystemHistory",
    "MemoryGovernor",
    "TieredHistory",
    "TieredRuntime",
    "attach_tiered_history",
    "restore_tiers",
]
