"""System states and histories (the paper's Section 2 model)."""

from repro.history.history import SystemHistory
from repro.history.state import SystemState

__all__ = ["SystemState", "SystemHistory"]
