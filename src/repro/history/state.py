"""System states: (database state, event set, timestamp).

Section 2: "A system state is a pair (S, E) where S is the database state
and E is the set of events ... a snapshot of the system giving the database
state and the set of events that occur at a particular instant."  A
timestamp is associated with each system state and exposed through the
``time`` data item.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.datamodel.relation import Relation
from repro.events.clock import TIME_ITEM
from repro.events.model import TRANSACTION_COMMIT, Event
from repro.storage.snapshot import DatabaseState


class SystemState:
    """One element of a system history.

    Also satisfies the query :class:`~repro.query.evaluator.StateView`
    protocol, resolving the ``time`` item to the state's timestamp — so PTL
    atoms such as ``time <= t - 10`` evaluate naturally at any state.
    """

    __slots__ = ("db", "events", "timestamp", "index", "delta")

    def __init__(
        self,
        db: DatabaseState,
        events: Iterable[Event],
        timestamp: int,
        index: int = -1,
        delta: Optional[frozenset[str]] = None,
    ):
        self.db = db
        self.events = frozenset(events)
        self.timestamp = timestamp
        self.index = index
        #: Names of the database items this state's update wrote (the
        #: transaction's write-set; empty for event/tick states).  ``None``
        #: means unknown — delta-aware evaluation then falls back to the
        #: item-identity check (see :mod:`repro.query.plan`).
        self.delta = delta

    # -- StateView protocol -------------------------------------------------

    def relation(self, name: str) -> Relation:
        return self.db.relation(name)

    def item(self, name: str, index: tuple = ()) -> Any:
        if name == TIME_ITEM:
            return self.timestamp
        return self.db.item(name, index)

    def has_relation(self, name: str) -> bool:
        return self.db.has_relation(name)

    def has_item(self, name: str) -> bool:
        return name == TIME_ITEM or self.db.has_item(name)

    # -- events ---------------------------------------------------------------

    def event_names(self) -> frozenset[str]:
        return frozenset(e.name for e in self.events)

    def commit_events(self) -> list[Event]:
        return [e for e in self.events if e.name == TRANSACTION_COMMIT]

    def is_commit_point(self) -> bool:
        """Whether this state contains a transaction-commit event."""
        return any(e.name == TRANSACTION_COMMIT for e in self.events)

    def committed_txn(self):
        """Id of the transaction committing at this state, or None."""
        for e in self.events:
            if e.name == TRANSACTION_COMMIT and e.params:
                return e.params[0]
        return None

    def with_index(self, index: int) -> "SystemState":
        return SystemState(self.db, self.events, self.timestamp, index, self.delta)

    def with_events(self, events: Iterable[Event]) -> "SystemState":
        return SystemState(self.db, events, self.timestamp, self.index, self.delta)

    def with_db(self, db: DatabaseState) -> "SystemState":
        # An arbitrary database swap invalidates the recorded write-set.
        return SystemState(db, self.events, self.timestamp, self.index, None)

    def __repr__(self) -> str:
        evs = ", ".join(sorted(str(e) for e in self.events))
        return f"SystemState(t={self.timestamp}, events=[{evs}])"
