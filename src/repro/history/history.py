"""System histories (Section 2).

A system history is a finite sequence of system states with:

* strictly increasing timestamps (simultaneous events share one state);
* at most one ``transaction_commit`` event per state;
* in the *transaction-time* model, consecutive database states identical
  unless the event set contains a commit (the new state then reflects all
  and only the changes of the committing transaction).

The history object validates these constraints on append.  The incremental
evaluator never walks a history — it sees each state once as it is
appended — but the reference semantics, the naive baseline, and the
valid-time machinery all consume histories, so the class supports random
access and slicing.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, Optional

from repro.errors import ClockError, HistoryError
from repro.events.model import Event
from repro.history.state import SystemState
from repro.storage.snapshot import DatabaseState


class SystemHistory:
    """An append-only sequence of :class:`SystemState`."""

    def __init__(
        self,
        states: Iterable[SystemState] = (),
        validate_transaction_time: bool = True,
        base_index: int = 0,
    ):
        self._states: list[SystemState] = []
        self.validate_transaction_time = validate_transaction_time
        #: Global index of this history's first state.  A crash-recovered
        #: engine keeps only the post-checkpoint suffix of the run's
        #: history; offsetting the assigned indices keeps firing records
        #: and state identities consistent across the crash.
        self.base_index = base_index
        for s in states:
            self.append(s)

    # -- construction ---------------------------------------------------------

    def append(self, state: SystemState) -> SystemState:
        """Validate and append, returning the (re-indexed) state."""
        if self._states and state.timestamp <= self._states[-1].timestamp:
            raise ClockError(
                f"timestamp {state.timestamp} not greater than previous "
                f"{self._states[-1].timestamp}"
            )
        if len(state.commit_events()) > 1:
            raise HistoryError(
                "at most one transaction may commit per system state"
            )
        if (
            self.validate_transaction_time
            and self._states
            and not state.is_commit_point()
            and state.db is not self._states[-1].db
            and state.db != self._states[-1].db
        ):
            raise HistoryError(
                "database state changed without a transaction commit"
            )
        indexed = state.with_index(self.base_index + len(self._states))
        self._states.append(indexed)
        return indexed

    def append_state(
        self,
        db: DatabaseState,
        events: Iterable[Event],
        timestamp: int,
    ) -> SystemState:
        return self.append(SystemState(db, events, timestamp))

    # -- access ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[SystemState]:
        return iter(self._states)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return SystemHistory(
                (s for s in self._states[index]),
                validate_transaction_time=False,
            )
        return self._states[index]

    @property
    def states(self) -> list[SystemState]:
        return list(self._states)

    @property
    def last(self) -> Optional[SystemState]:
        return self._states[-1] if self._states else None

    def prefix(self, length: int) -> "SystemHistory":
        """The first ``length`` states, as a history."""
        return self[:length]

    def up_to_time(self, timestamp: int) -> "SystemHistory":
        """States with timestamp <= ``timestamp``."""
        return SystemHistory(
            (s for s in self._states if s.timestamp <= timestamp),
            validate_transaction_time=False,
        )

    def commit_points(self) -> list[int]:
        """Indices of states containing a transaction-commit event
        (Section 8: 'a commit point in a history h is a state that contains
        the commit transaction event')."""
        return [i for i, s in enumerate(self._states) if s.is_commit_point()]

    def as_of(self, timestamp: int) -> Optional[SystemState]:
        """Latest state at or before ``timestamp`` (binary search —
        timestamps strictly increase)."""
        i = bisect_right(self._states, timestamp, key=lambda s: s.timestamp)
        return self._states[i - 1] if i else None

    def state_at_time(self, timestamp: int) -> Optional[SystemState]:
        for s in self._states:
            if s.timestamp == timestamp:
                return s
        return None

    def __repr__(self) -> str:
        return f"SystemHistory({len(self._states)} states)"
