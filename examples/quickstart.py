#!/usr/bin/env python
"""Quickstart: temporal triggers and integrity constraints in 60 lines.

Reproduces the paper's running example: a Condition-Action rule whose
condition is the Past Temporal Logic formula

    [t := time] [x := price(IBM)]
        previously (price(IBM) <= 0.5 * x  &  time >= t - 10)

("the IBM price doubled within 10 time units"), detected incrementally as
stock-update transactions commit, plus a temporal integrity constraint
that aborts any transaction making the price jump too fast.

Run:  python examples/quickstart.py
"""

from repro.datamodel import FLOAT, STRING, Schema
from repro.engine import ActiveDatabase
from repro.errors import TransactionAborted
from repro.events import user_event
from repro.rules import RuleManager


def main() -> None:
    # 1. An active database with one relation and a named query symbol.
    adb = ActiveDatabase(start_time=0)
    adb.create_relation(
        "STOCK", Schema.of(name=STRING, price=FLOAT), [("IBM", 10.0)]
    )
    adb.define_query(
        "price", ["name"],
        "RETRIEVE (S.price) FROM STOCK S WHERE S.name = $name",
    )

    # 2. The temporal component (rule manager).
    rules = RuleManager(adb)

    fired = []
    rules.add_trigger(
        "sharp_increase",
        "[t := time] [x := price(IBM)] "
        "previously (price(IBM) <= 0.5 * x & time >= t - 10)",
        lambda ctx: fired.append(ctx.state.timestamp),
    )

    # 3. A temporal integrity constraint: the price may never more than
    #    triple in a single transition (refers to the previous state).
    rules.add_integrity_constraint(
        "no_wild_jump",
        "[x := price(IBM)] !lasttime (price(IBM) * 3 < x)",
    )

    # 4. Drive the paper's trace: (price, time) ticks, one transaction each.
    def tick(price: float, at_time: int) -> None:
        txn = adb.begin()
        txn.update(
            "STOCK", lambda r: r["name"] == "IBM", lambda r: {"price": price}
        )
        txn.post_event(user_event("update_stocks"))
        txn.commit(at_time)

    for price, ts in [(10.0, 1), (15.0, 2), (18.0, 5), (25.0, 8)]:
        tick(price, ts)
        print(f"t={ts:>2}  price={price:>5}  trigger fired at: {fired}")

    assert fired == [8], "the paper's trigger fires at the fourth state"

    # 5. The integrity constraint in action: a wild jump is aborted.
    try:
        tick(200.0, 9)
    except TransactionAborted as exc:
        print(f"t= 9  price=200.0  -> {exc}")

    from repro.query import eval_scalar, parse_query

    final = eval_scalar(
        parse_query("RETRIEVE (S.price) FROM STOCK S WHERE S.name = 'IBM'"),
        adb.state,
    )
    print(f"final committed price: {final} (the jump was rolled back)")
    assert final == 25.0


if __name__ == "__main__":
    main()
