#!/usr/bin/env python
"""Operations monitoring: past conditions, O(1) decomposable triggers, and
future-obligation monitors in one scenario.

A sensor feed posts ``@alarm(severity)`` events and temperature updates.
We install:

* a **decomposable** trigger (the [8] prototype's subclass — two
  timestamps of auxiliary state): "an alarm occurred within the last 15
  minutes and no reset since the start";
* a full **PTL** trigger with an interval condition: "the temperature has
  stayed above 90 since the last alarm";
* a **future monitor** (the paper's future-work operators): every alarm
  must be acknowledged within 5 minutes — a bounded response obligation
  that resolves to VIOLATED if ops goes to lunch.

Run:  python examples/alarm_response.py
"""

from repro import TemporalDatabase
from repro.ptl import parse_formula
from repro.ptl.decomposable import DecomposableDetector, is_decomposable
from repro.ptl.future import Always, Atom, Eventually, FutureMonitor, Verdict, fnot, for_
from repro.events import user_event


def main() -> None:
    tdb = TemporalDatabase()
    tdb.declare_item("TEMP", 70.0)

    log: list[str] = []

    # -- 1. a decomposable trigger, run through the rule manager ----------
    hot_zone = parse_formula(
        "previously[15] @alarm & !previously @reset", items={"TEMP"}
    )
    assert is_decomposable(hot_zone)
    tdb.on(
        "hot_zone",
        hot_zone,
        lambda ctx: log.append(f"t={ctx.state.timestamp:>3}  HOT ZONE"),
    )
    # the same condition as a standalone O(1) detector (for comparison)
    detector = DecomposableDetector(hot_zone)
    detector_fired: list[int] = []

    tdb.engine.bus.subscribe(
        lambda state: detector.step(state).fired
        and detector_fired.append(state.timestamp)
    )

    # -- 2. an interval PTL trigger --------------------------------------------
    tdb.on(
        "sustained_heat",
        "(TEMP > 90) since @alarm",
        lambda ctx: log.append(f"t={ctx.state.timestamp:>3}  SUSTAINED HEAT"),
    )

    # -- 3. a future obligation per alarm ----------------------------------------
    monitor = FutureMonitor(
        Always(
            for_(
                [
                    fnot(Atom(parse_formula("@alarm"))),
                    Eventually(Atom(parse_formula("@ack")), 5),
                ]
            )
        )
    )
    verdicts: list[tuple[int, str]] = []
    tdb.engine.bus.subscribe(
        lambda state: verdicts.append((state.timestamp, monitor.step(state).value))
    )

    # -- drive the scenario ----------------------------------------------------------
    def set_temp(value, at):
        with tdb.transaction(commit_time=at) as txn:
            txn.set_item("TEMP", value)

    set_temp(95.0, at=1)
    tdb.post_event(user_event("alarm"), at_time=3)
    tdb.post_event(user_event("ack"), at_time=6)          # within 5 ✓
    set_temp(96.0, at=8)
    set_temp(85.0, at=12)                                  # heat breaks
    tdb.post_event(user_event("alarm"), at_time=20)
    for t in range(21, 29):
        tdb.tick(at_time=t)                                # ... no ack

    print("\n".join(log))
    print(f"decomposable detector fired at: {detector_fired}")
    print(f"final obligation verdict: {verdicts[-1]}")

    # hot zone: alarm within 15 and never reset
    hz = [t for t in detector_fired]
    assert 3 in hz and 20 in hz
    # rule-manager trigger agrees with the standalone detector
    manager_hz = [f.timestamp for f in tdb.firings if f.rule == "hot_zone"]
    assert manager_hz == detector_fired
    # sustained heat holds from each alarm until the temperature breaks
    # (the alarm state itself satisfies the since's right-hand side, so
    # t=20 fires even though the temperature already dropped)
    heat = [f.timestamp for f in tdb.firings if f.rule == "sustained_heat"]
    assert heat == [3, 6, 8, 20]
    # the second alarm went unacknowledged: obligation violated after 25
    assert verdicts[-1][1] == Verdict.VIOLATED.value
    print("all alarm-response assertions hold")


if __name__ == "__main__":
    main()
