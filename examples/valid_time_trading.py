#!/usr/bin/env python
"""Valid time vs transaction time (Section 9).

A stock sale can occur at 12:50 and only be posted to the database at
1:00pm — the valid time precedes the transaction time.  This example
shows each of the paper's Section 9 phenomena:

* a retroactive update changing the past of the committed history;
* a trigger that fires with respect to valid time but not transaction
  time ("the stock price remains constant for seven minutes");
* tentative triggers (act on tentative values, may act early) vs
  definite triggers (wait out the maximum delay DELTA);
* the online/offline satisfaction divergence and Theorem 2.

Run:  python examples/valid_time_trading.py
"""

from repro.ptl import parse_formula, satisfies
from repro.validtime import (
    DefiniteTrigger,
    TentativeTrigger,
    ValidTimeDatabase,
    check_theorem2,
    offline_satisfied,
    online_satisfied,
)


def main() -> None:
    # -- 1. a trigger that differs between the two time models ------------
    print("1. 'price constant for 7 minutes' under the two time models")
    vtdb = ValidTimeDatabase(start_time=0, max_delay=15)
    vtdb.declare_item("PRICE", 72.0)

    def post(price, valid_time, commit_time):
        txn = vtdb.begin()
        txn.set_item("PRICE", price, valid_time=valid_time)
        txn.commit(at_time=commit_time)

    # a neutral market tick at t=56 gives both histories a state inside
    # the 7-minute window ending at the evaluation point
    from repro.events import user_event

    vtdb.post_event(user_event("market_tick"), at_time=56)
    # sales at 12:50 (t=50) and 12:53 (t=53), posted late at 1:00/1:01
    post(75.0, valid_time=50, commit_time=60)
    post(75.0, valid_time=53, commit_time=61)

    constant_7 = parse_formula(
        "[p := PRICE] [u := time] "
        "!previously (time >= u - 7 & !(PRICE = p))",
        items={"PRICE"},
    )
    vt_history = vtdb.committed_history()
    tt_history = vtdb.collapsed_committed_history()
    vt = satisfies(vt_history.states, len(vt_history) - 1, constant_7)
    tt = satisfies(tt_history.states, len(tt_history) - 1, constant_7)
    print(f"   valid time      : {'satisfied' if vt else 'not satisfied'}")
    print(f"   transaction time: {'satisfied' if tt else 'not satisfied'}")
    assert vt and not tt  # the change happened >7 min before the commits

    # -- 2. tentative vs definite triggers ---------------------------------
    print("\n2. tentative vs definite triggers (DELTA = 15)")
    vtdb2 = ValidTimeDatabase(start_time=0, max_delay=15)
    vtdb2.declare_item("PRICE", 40.0)
    spike = parse_formula("PRICE >= 100", items={"PRICE"})
    tentative = TentativeTrigger(vtdb2, spike)
    definite = DefiniteTrigger(vtdb2, spike)

    txn = vtdb2.begin()
    txn.set_item("PRICE", 120.0, valid_time=20)
    txn.commit(at_time=25)
    definite.poll()
    print(f"   at now=25: tentative fired at {tentative.fired_at()}, "
          f"definite fired at {definite.fired_at()}")
    # the condition holds at the update state (t=20) and the commit state
    assert tentative.fired_at() == [20, 25] and definite.fired_at() == []

    vtdb2.advance_to(41)  # both states now strictly older than DELTA
    definite.poll()
    print(f"   at now=41: definite fired at {definite.fired_at()}")
    assert definite.fired_at() == [20, 25]

    # -- 3. online vs offline satisfaction ------------------------------------
    print("\n3. online vs offline satisfaction (the u1/u2 example)")
    vtdb3 = ValidTimeDatabase(start_time=0)
    vtdb3.declare_item("A", 0)
    vtdb3.declare_item("B", 0)
    precedes = parse_formula(
        "throughout_past (!(B = 1) | previously A = 1)", items={"A", "B"}
    )
    t1 = vtdb3.begin()
    t1.set_item("A", 1, valid_time=5)     # u1 (T1)
    t2 = vtdb3.begin()
    t2.set_item("B", 1, valid_time=8)     # u2 (T2)
    t2.commit(at_time=20)                 # commit-T2 before commit-T1
    t1.commit(at_time=25)
    online = online_satisfied(vtdb3, precedes)
    offline = offline_satisfied(vtdb3, precedes)
    print(f"   online : {'satisfied' if online else 'NOT satisfied'}")
    print(f"   offline: {'satisfied' if offline else 'NOT satisfied'}")
    assert offline and not online

    # -- 4. Theorem 2 -----------------------------------------------------------
    holds = check_theorem2(vtdb3, precedes)
    print(f"\n4. Theorem 2 on the collapsed committed history: "
          f"{'online == offline holds' if holds else 'VIOLATED'}")
    assert holds
    print("\nall valid-time assertions hold")


if __name__ == "__main__":
    main()
