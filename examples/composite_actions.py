#!/usr/bin/env python
"""Temporal and composite actions via the ``executed`` predicate (Section 7).

Two of the paper's constructions:

1.  A composite action A = (A1, then A2 ten minutes later), compiled to

        r1 : C(x) -> A1(x)
        r2 : executed(r1, x, t) & time = t + 10 -> A2(x)

2.  The temporal action "whenever price(IBM) < 60, buy 50 IBM stocks every
    10 minutes for the next hour (to avoid driving the price up)",
    compiled to

        r1 : C -> BUY
        r2 : executed(r1, t) & (time - t <= 60) & (time - t) mod 10 = 0 -> BUY

Run:  python examples/composite_actions.py
"""

from repro.events import user_event
from repro.rules import (
    CompositeStep,
    PyAction,
    RuleManager,
    add_composite,
    add_periodic,
)
from repro.workloads import apply_tick, make_stock_db


def main() -> None:
    adb = make_stock_db([("IBM", 70.0)])
    rules = RuleManager(adb)

    log: list[str] = []

    def act(label):
        def action(ctx):
            log.append(f"t={ctx.state.timestamp:>3}  {label} {dict(ctx.bindings)}")

        return action

    # -- composite: confirm an order, then settle it 10 minutes later -----
    add_composite(
        rules,
        "order_flow",
        "@order(x)",
        [
            CompositeStep("confirm", PyAction(act("CONFIRM order"))),
            CompositeStep(
                "settle", PyAction(act("SETTLE order")), after="confirm", delay=10
            ),
        ],
        params=("x",),
    )

    # -- temporal action: periodic buying while armed ----------------------
    bought: list[int] = []
    add_periodic(
        rules,
        "slow_buy",
        "price(IBM) < 60",
        lambda ctx: bought.append(ctx.state.timestamp),
        period=10,
        horizon=60,
    )

    adb.post_event(user_event("order", "ord-1"), at_time=5)
    for t in range(6, 20):  # one state per minute
        adb.tick(at_time=t)
    apply_tick(adb, "IBM", 55.0, at_time=20)  # arms slow_buy, first purchase
    for t in range(21, 95):
        adb.tick(at_time=t)

    print("\n".join(line for line in log))
    print(f"BUY executions at: {bought}")

    # CONFIRM at 5; SETTLE at exactly 15
    assert any("CONFIRM" in line and "t=  5" in line for line in log)
    assert any("SETTLE" in line and "t= 15" in line for line in log)
    # purchases every 10 minutes for an hour, then stop
    assert bought == [20, 30, 40, 50, 60, 70, 80]
    print("all composite-action assertions hold")


if __name__ == "__main__":
    main()
