#!/usr/bin/env python
"""Stock monitoring: the paper's Sections 1, 4 and 6 scenarios end to end.

* a condition mixing an event interval and a database predicate: "the
  price of IBM stays above 50 while user X is logged in" (Section 4.3's
  login/logout pattern);
* a free-variable rule over *all* stocks via domains (Section 6.1.1's
  indexing): any stock that doubled within 10 units;
* temporal aggregates: the moving hourly average (Section 6), evaluated
  both by the direct pipeline and by the rewriting into maintained items;
* the Dow-Jones condition from the introduction: "the index fell more
  than 250 points in the last 2 hours".

The whole run executes with the observability layer on: per-rule firing
counters, step-latency histograms, and state-size gauges are printed at
the end, together with a structured trace of one firing and its
explanation.

Run:  python examples/stock_monitor.py
"""

from repro.events import user_event
from repro.rules import FireMode, RuleManager
from repro.workloads import (
    apply_tick,
    dow_jones_trace,
    make_stock_db,
)


def main() -> None:
    adb = make_stock_db(
        [("IBM", 60.0), ("XYZ", 40.0), ("OIL", 80.0)], metrics=True
    )
    adb.declare_item("DOW", 10_000.0)
    rules = RuleManager(adb, trace=True)

    log: list[str] = []

    def report(label):
        def action(ctx):
            log.append(
                f"t={ctx.state.timestamp:>4}  {label}  {dict(ctx.bindings)}"
            )

        return action

    # -- 1. event + state interval condition -------------------------------
    rules.add_trigger(
        "ibm_high_while_x_logged_in",
        "price(IBM) > 50 & (!@user_logout('X') since @user_login('X'))",
        report("IBM above 50 while X is logged in"),
        fire_mode=FireMode.RISING_EDGE,
    )

    # -- 2. free-variable rule over all stocks -----------------------------
    rules.add_trigger(
        "any_stock_doubled",
        "[t := time] [x := price($s)] "
        "previously (price($s) <= 0.5 * x & time >= t - 10)",
        report("stock doubled within 10 units"),
        params=("s",),
        domains={"s": "RETRIEVE (S.name) FROM STOCK S"},
    )

    # -- 3. temporal aggregate: moving hourly average ------------------------
    cond = (
        "[u := time] avg(price(IBM); time <= u - 60; @update_stocks) < 45"
    )
    rules.add_trigger(
        "ibm_hourly_avg_low",
        cond,
        report("IBM hourly average below 45 (direct)"),
        fire_mode=FireMode.RISING_EDGE,
    )
    rules.add_trigger(
        "ibm_hourly_avg_low_rewritten",
        cond,
        report("IBM hourly average below 45 (rewritten)"),
        fire_mode=FireMode.RISING_EDGE,
        rewrite_aggregates=True,
    )

    # -- 4. the introduction's Dow-Jones condition ----------------------------
    rules.add_trigger(
        "dow_crash",
        "[d := DOW] previously[120] (DOW >= d + 250)",
        report("Dow fell more than 250 points within 2 hours"),
        fire_mode=FireMode.RISING_EDGE,
    )

    # -- drive the scenario ---------------------------------------------------
    adb.post_event(user_event("user_login", "X"), at_time=5)
    apply_tick(adb, "IBM", 62.0, at_time=10)     # high while logged in
    apply_tick(adb, "XYZ", 85.0, at_time=14)     # XYZ doubled (40 -> 85)
    adb.post_event(user_event("user_logout", "X"), at_time=20)
    apply_tick(adb, "IBM", 40.0, at_time=30)

    # an hour of low prices drags the moving average down
    for k, ts in enumerate(range(40, 140, 10)):
        apply_tick(adb, "IBM", 40.0 + (k % 3), at_time=ts)

    # a Dow crash within two hours
    def set_dow(value, ts):
        txn = adb.begin()
        txn.set_item("DOW", value)
        txn.commit(ts)

    set_dow(9_980.0, 150)
    set_dow(9_690.0, 200)  # fell 290 within 50 minutes

    print("\n".join(log))

    by_rule = {}
    for f in rules.firings:
        by_rule.setdefault(f.rule, []).append(f.timestamp)
    # fires at the login state itself: the price is already above 50
    assert by_rule["ibm_high_while_x_logged_in"] == [5]
    # XYZ doubled at t=14 and is still double its 10-units-ago price at 20
    assert by_rule["any_stock_doubled"] == [14, 20]
    assert ("s", "XYZ") in rules.firings_of("any_stock_doubled")[0].bindings
    assert by_rule["ibm_hourly_avg_low"] == by_rule["ibm_hourly_avg_low_rewritten"]
    assert by_rule["dow_crash"] == [200]
    print("\nall monitor assertions hold")

    # -- observability: what the run looked like from the outside -------------
    registry = adb.metrics
    print("\nper-rule metrics:")
    for counter in registry.find("rule_firings_total"):
        rule = dict(counter.labels)["rule"]
        lat = registry.value("evaluator_step_seconds", rule=rule)
        size = registry.value("evaluator_state_size", rule=rule)
        p50 = f"{lat['p50'] * 1e6:7.1f}us" if lat else "      --"
        print(
            f"  {rule:<32} fired={counter.value:<3} "
            f"step p50={p50}  state size={size}"
        )
    print(
        f"engine: {registry.value('engine_states_total')} states, "
        f"{registry.value('engine_commits_total')} commits, "
        f"{registry.value('bus_delivery_total')} bus deliveries"
    )

    from repro.obs import FIRING

    firing_events = rules.trace.events(FIRING)
    first = firing_events[0]
    print(f"\nfirst firing trace event: {first.to_dict()}")
    explanation = rules.explain_firing(rules.firings[0], rendered=True)
    print(f"\nwhy it fired:\n{explanation}")
    assert registry.value("rule_firings_total", rule="dow_crash") == 1
    assert len(firing_events) == len(rules.firings)


if __name__ == "__main__":
    main()
