#!/usr/bin/env python
"""Temporal integrity constraints "from first principles" (Sections 1, 3).

Unlike prior work that compiles temporal constraints into nontemporal
rules, the paper enforces them with the same incremental evaluator that
powers triggers.  Three constraints of increasing temporal depth:

1. static:   the price never exceeds a cap (classic state constraint);
2. dynamic:  the price never drops by more than half in one transition
             (relates consecutive states, via ``lasttime``);
3. historic: a stock may only be sold after it was listed, and salaries
             never decrease — "the value of attribute A remains positive
             while user X is logged in" style interval constraints.

Run:  python examples/integrity_constraints.py
"""

from repro.datamodel import FLOAT, STRING, Schema
from repro.engine import ActiveDatabase
from repro.errors import TransactionAborted
from repro.events import user_event
from repro.rules import RuleManager


def main() -> None:
    adb = ActiveDatabase(start_time=0)
    adb.create_relation(
        "EMP", Schema.of(name=STRING, salary=FLOAT), [("ann", 100.0)]
    )
    adb.define_query(
        "salary", ["who"],
        "RETRIEVE (E.salary) FROM EMP E WHERE E.name = $who",
    )
    rules = RuleManager(adb)

    # 1. static cap
    rules.add_integrity_constraint("cap", "salary(ann) <= 1000")

    # 2. dynamic: salaries never decrease (compares with the previous state)
    rules.add_integrity_constraint(
        "no_pay_cut",
        "[s := salary(ann)] !lasttime (salary(ann) > s)",
    )

    # 3. interval constraint: while the audit user is logged in, salary
    #    stays constant (the paper's "A remains positive while X is
    #    logged in" pattern)
    rules.add_integrity_constraint(
        "frozen_during_audit",
        "!( (!@audit_end since @audit_start) "
        "   & [s := salary(ann)] lasttime previously "
        "     (@audit_start & !(salary(ann) = s)) )",
    )

    def set_salary(value, at_time=None):
        txn = adb.begin()
        txn.update("EMP", lambda r: r["name"] == "ann", lambda r: {"salary": value})
        txn.commit(at_time)

    outcomes = []

    def attempt(label, fn):
        try:
            fn()
            outcomes.append((label, "committed"))
        except TransactionAborted as exc:
            outcomes.append((label, f"ABORTED ({exc.reason})"))

    attempt("raise to 200", lambda: set_salary(200.0, 10))
    attempt("cut to 150", lambda: set_salary(150.0, 20))       # no_pay_cut
    attempt("raise to 5000", lambda: set_salary(5000.0, 30))   # cap
    adb.post_event(user_event("audit_start"), at_time=40)
    attempt("raise to 300 during audit", lambda: set_salary(300.0, 50))
    adb.post_event(user_event("audit_end"), at_time=60)
    attempt("raise to 300 after audit", lambda: set_salary(300.0, 70))

    width = max(len(l) for l, _ in outcomes)
    for label, result in outcomes:
        print(f"{label.ljust(width)}  ->  {result}")

    assert [r for _, r in outcomes] == [
        "committed",
        "ABORTED (integrity constraint 'no_pay_cut' violated)",
        "ABORTED (integrity constraint 'cap' violated)",
        "ABORTED (integrity constraint 'frozen_during_audit' violated)",
        "committed",
    ]
    print("\nall integrity-constraint assertions hold")


if __name__ == "__main__":
    main()
